//! The collection phase (Section 3.3, step 1; Sections 4.1/4.2/4.4).
//!
//! The collection phase "evaluates range expressions and single join terms.
//! The results are single lists and indirect joins for all monadic and
//! dyadic join terms in the selection expression.  This phase performs data
//! compression (records to references) and data reduction (testing join
//! terms)."
//!
//! Depending on the strategy level the same logical structures are produced
//! with very different amounts of work, which the [`Metrics`] handle
//! records:
//!
//! * `S0` — every join term evaluation scans its relation(s) separately;
//! * `S1`+ — each relation is scanned once (parallel evaluation);
//! * `S2`+ — within a conjunction, monadic terms restrict indirect joins;
//! * `S3`+ — extended range expressions shrink the candidate sets;
//! * `S4` — value lists evaluate quantifiers during collection.

use pascalr_sync::Arc;
use std::collections::{BTreeMap, BTreeSet, HashMap};

use pascalr_calculus::{
    eval_formula, Binding, Env, Quantifier, RangeExpr, RelationProvider, Term, VarName,
};
use pascalr_catalog::Catalog;
use pascalr_planner::{DyadicLink, QueryPlan, SemijoinStep, ValueListMode};
use pascalr_relation::{CompareOp, ElemRef, Key, Relation, RelationSchema, Tuple, Value};
use pascalr_storage::{Metrics, Phase};

use crate::access::StorageReader;
use crate::error::ExecError;

/// Adapter exposing the catalog to the calculus semantics (for range
/// restriction evaluation).
pub struct ExecProvider<'a>(pub &'a Catalog);

impl RelationProvider for ExecProvider<'_> {
    fn relation(&self, name: &str) -> Option<&Relation> {
        self.0.relation(name).ok()
    }
}

/// Per-variable binding information resolved against the catalog.
#[derive(Debug, Clone)]
pub struct VarInfo {
    /// The variable name.
    pub var: VarName,
    /// The base relation it ranges over.
    pub relation: Arc<str>,
    /// The schema of that relation.
    pub schema: Arc<RelationSchema>,
    /// The (possibly extended) range expression.
    pub range: RangeExpr,
}

/// An indirect join: the pairs of references satisfying one dyadic join term
/// within one conjunction.
#[derive(Debug, Clone)]
pub struct IndirectJoin {
    /// The dyadic term.
    pub term: Term,
    /// The variable of the left column.
    pub left_var: VarName,
    /// The variable of the right column.
    pub right_var: VarName,
    /// Satisfying reference pairs.
    pub pairs: Vec<(ElemRef, ElemRef)>,
    /// Pairs grouped by left reference (probe structure).
    pub by_left: HashMap<ElemRef, Vec<ElemRef>>,
    /// Pairs grouped by right reference (probe structure).
    pub by_right: HashMap<ElemRef, Vec<ElemRef>>,
}

/// The structures built for one conjunction of the matrix.
#[derive(Debug, Clone, Default)]
pub struct ConjStructures {
    /// Single lists: per variable, the candidate references satisfying the
    /// conjunction's monadic terms over that variable (and any derived
    /// predicates assigned to it).
    pub single_lists: BTreeMap<String, Vec<ElemRef>>,
    /// Indirect joins for the conjunction's dyadic terms.
    pub indirect_joins: Vec<IndirectJoin>,
}

/// A derived predicate produced by a Strategy 4 value-list step: a test on
/// elements of the target variable.
#[derive(Debug, Clone)]
pub struct DerivedCheck {
    /// The variable whose elements are tested.
    pub target_var: VarName,
    /// The quantifier of the evaluated variable.
    pub quantifier: Quantifier,
    /// The comparisons `target.attr OP bound.attr`.
    pub links: Vec<DyadicLink>,
    /// The (possibly reduced) value list: one row per retained element of the
    /// bound variable's range, projected onto the linked components.
    pub values: Vec<Box<[Value]>>,
    /// If the predicate collapsed to a constant (e.g. `SOME`/`<>` with two
    /// distinct values, or an empty value list).
    pub constant: Option<bool>,
    /// Number of values actually stored (for the E9 report).
    pub stored_values: usize,
}

impl DerivedCheck {
    /// Tests an element of the target variable.
    pub fn satisfied(
        &self,
        tuple: &Tuple,
        schema: &RelationSchema,
        metrics: &Metrics,
    ) -> Result<bool, ExecError> {
        if let Some(c) = self.constant {
            return Ok(c);
        }
        let mut target_vals = Vec::with_capacity(self.links.len());
        for link in &self.links {
            let idx = schema.attr_index(&link.target_attr).ok_or_else(|| {
                ExecError::UnknownComponent {
                    variable: self.target_var.to_string(),
                    attribute: link.target_attr.to_string(),
                }
            })?;
            target_vals.push(tuple.get(idx));
        }
        let mut comparisons = 0u64;
        let result = match self.quantifier {
            Quantifier::Some => self.values.iter().any(|row| {
                comparisons += self.links.len() as u64;
                self.row_matches(&target_vals, row)
            }),
            Quantifier::All => self.values.iter().all(|row| {
                comparisons += self.links.len() as u64;
                self.row_matches(&target_vals, row)
            }),
        };
        metrics.record_comparisons(Phase::Collection, comparisons);
        Ok(result)
    }

    fn row_matches(&self, target_vals: &[&Value], row: &[Value]) -> bool {
        self.links
            .iter()
            .enumerate()
            .all(|(i, link)| link.op.eval(target_vals[i], &row[i]).unwrap_or(false))
    }
}

/// Everything the collection phase hands to the combination phase.
#[derive(Debug, Clone)]
pub struct CollectionOutput {
    /// Binding information for every combination-phase variable.
    pub var_info: BTreeMap<String, VarInfo>,
    /// Candidate references per combination-phase variable (range elements
    /// after applying the range restriction).
    pub candidates: BTreeMap<String, Vec<ElemRef>>,
    /// Structures per conjunction of the matrix.
    pub per_conjunction: Vec<ConjStructures>,
    /// Derived checks, indexed like the plan's semijoin steps.
    pub derived: Vec<DerivedCheck>,
}

fn resolve_var(
    var: &VarName,
    range: &RangeExpr,
    reader: StorageReader<'_>,
) -> Result<VarInfo, ExecError> {
    let rel = reader.relation(&range.relation)?;
    Ok(VarInfo {
        var: var.clone(),
        relation: Arc::from(rel.name()),
        schema: rel.schema().clone(),
        range: range.clone(),
    })
}

/// Evaluates a range expression into candidate references, recording the
/// restriction comparisons against `metrics`.
///
/// This is the primitive behind every candidate list the collection phase
/// builds.  It is public because the executor's **runtime assumption
/// checks** (and tests probing planner range extensions) need to answer
/// "is this — possibly extended — range empty right now?" without running
/// a whole collection phase; pass a throwaway [`Metrics`] handle when the
/// probe should not be charged to the query.  All tuple reads go through
/// the backend-generic [`StorageReader`] seam.
pub fn range_candidates(
    info: &VarInfo,
    reader: StorageReader<'_>,
    metrics: &Metrics,
) -> Result<Vec<ElemRef>, ExecError> {
    let rel = reader.relation(&info.relation)?;
    let provider = ExecProvider(reader.catalog());
    let mut out = Vec::new();
    for (r, t) in reader.scan(rel) {
        let keep = match &info.range.restriction {
            None => true,
            Some(restriction) => {
                metrics.record_comparisons(Phase::Collection, 1);
                let mut env = Env::new();
                env.insert(
                    info.var.to_string(),
                    Binding {
                        schema: info.schema.clone(),
                        tuple: t.clone(),
                    },
                );
                eval_formula(restriction, &provider, &env)?
            }
        };
        if keep {
            out.push(r);
        }
    }
    Ok(out)
}

/// The permanent-index probe that can serve a restricted range without a
/// full scan: the first declared index (per the shared
/// [`pascalr_optimizer::covering_range_indexes`] decision) whose every
/// component carries an equality conjunct with a *constant* operand —
/// parameters are already bound by execution time, so a plan whose shape
/// was judged index-servable always probes here.  Returns the indexed
/// component names and the probe key; shape-only — the physical index is
/// fetched (and lazily rebuilt) by [`range_candidates_indexed`].
pub(crate) fn range_probe_key(
    info: &VarInfo,
    reader: StorageReader<'_>,
) -> Option<(Vec<String>, Key)> {
    let restriction = info.range.restriction.as_ref()?;
    let eqs = pascalr_optimizer::eq_conjunct_operands(restriction, info.var.as_ref());
    let decls: Vec<&pascalr_catalog::IndexDecl> = reader.catalog().indexes().collect();
    for decl in pascalr_optimizer::covering_range_indexes(
        decls.iter().copied(),
        &info.range,
        info.var.as_ref(),
    ) {
        let values: Option<Vec<Value>> = decl
            .attributes
            .iter()
            .map(|a| {
                eqs.iter().find_map(|(attr, operand)| {
                    (attr.as_ref() == a.as_str()).then(|| match operand {
                        pascalr_calculus::Operand::Const(v) => Some(v.clone()),
                        _ => None,
                    })?
                })
            })
            .collect();
        if let Some(values) = values {
            return Some((decl.attributes.clone(), Key::new(values)));
        }
    }
    None
}

/// Index-backed variant of [`range_candidates`]: when a permanent index
/// covers the equality part of the range restriction, the candidates come
/// from one index probe (plus a residual restriction check per probed
/// element) instead of a full relation scan.  Returns `Ok(None)` when no
/// covering index exists; a stale index rebuilt here is charged as one
/// index build.
pub(crate) fn range_candidates_indexed(
    info: &VarInfo,
    reader: StorageReader<'_>,
    metrics: &Metrics,
) -> Result<Option<Vec<ElemRef>>, ExecError> {
    let Some((attrs, key)) = range_probe_key(info, reader) else {
        return Ok(None);
    };
    let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
    let Some(use_) = reader.permanent_index(&info.relation, &attr_refs) else {
        return Ok(None);
    };
    if use_.rebuilt {
        metrics.record_index_build(Phase::Collection);
    }
    metrics.record_index_probes(Phase::Collection, 1);
    let Some(restriction) = info.range.restriction.as_ref() else {
        // `range_probe_key` only returns a key for restricted ranges;
        // without one there is nothing for the index to serve.
        return Ok(None);
    };
    let rel = reader.relation(&info.relation)?;
    let provider = ExecProvider(reader.catalog());
    let matches = use_.index.probe(&key);
    // Point reads through the index: one element (and page) per match.
    metrics.record_tuple_reads(
        Phase::Collection,
        matches.len() as u64,
        matches.len() as u64,
    );
    let mut out = Vec::new();
    for &r in matches {
        let tuple = reader.deref(rel, r)?;
        metrics.record_comparisons(Phase::Collection, 1);
        let mut env = Env::new();
        env.insert(
            info.var.to_string(),
            Binding {
                schema: info.schema.clone(),
                tuple: tuple.clone(),
            },
        );
        if eval_formula(restriction, &provider, &env)? {
            out.push(r);
        }
    }
    Ok(Some(out))
}

/// Evaluates a monadic term for a single element.
fn monadic_holds(
    term: &Term,
    var: &str,
    tuple: &Tuple,
    schema: &RelationSchema,
    reader: StorageReader<'_>,
) -> Result<bool, ExecError> {
    if let Some((attr, op, constant)) = term.as_monadic_constant(var) {
        let idx = schema
            .attr_index(&attr)
            .ok_or_else(|| ExecError::UnknownComponent {
                variable: var.to_string(),
                attribute: attr.to_string(),
            })?;
        return Ok(op.eval(tuple.get(idx), &constant)?);
    }
    // General case (e.g. a comparison between two components of the same
    // variable): evaluate through the calculus semantics.
    let mut env = Env::new();
    env.insert(
        var.to_string(),
        Binding {
            schema: Arc::new(schema.clone()),
            tuple: tuple.clone(),
        },
    );
    let provider = ExecProvider(reader.catalog());
    Ok(eval_formula(
        &pascalr_calculus::Formula::Term(term.clone()),
        &provider,
        &env,
    )?)
}

/// Accounts for the relation scans the strategy performs.
///
/// `index_served` names the relations whose every range lookup in this
/// plan is answered by a permanent-index probe ([`range_candidates_indexed`])
/// — those relations are never actually scanned, so no scan is recorded
/// for them.  Index builds are *not* predicted here: they are recorded at
/// the site where an ephemeral index is really built (the indirect-join
/// construction), so that terms covered by a permanent index record
/// probes but zero builds and `explain_analyzed()` stays truthful.
fn record_scans(
    plan: &QueryPlan,
    reader: StorageReader<'_>,
    metrics: &Metrics,
    index_served: &BTreeSet<String>,
) -> Result<(), ExecError> {
    // Page counts come from the storage layer's view of the relation: the
    // persistent backend's measured heap pages when one is active, the
    // analytical page model otherwise (see `StorageReader::record_scan`).
    let scan = |relation: &str| -> Result<(), ExecError> {
        reader.record_scan(metrics, Phase::Collection, relation)
    };

    if plan.strategy.parallel_scans() {
        // One scan per relation in the plan's scan order, minus the
        // relations permanent indexes serve outright.
        for r in &plan.scan_order {
            if !index_served.contains(r.as_ref()) {
                scan(r)?;
            }
        }
    } else {
        // Baseline: every join-term evaluation reads its relation(s).
        let relation_of_var = |var: &str| -> Option<Arc<str>> {
            plan.prepared
                .range_of(var)
                .map(|r| Arc::from(r.relation.as_ref()))
        };
        for conj in &plan.prepared.form.matrix {
            for term in &conj.terms {
                let vars: Vec<_> = term.vars().into_iter().collect();
                for v in &vars {
                    if let Some(rel) = relation_of_var(v) {
                        scan(&rel)?;
                    }
                }
            }
            // Free/quantified variables whose range is read to produce
            // candidate references even without join terms.
        }
        // Ranges of variables that appear in no term still have to be read
        // once to produce their candidate lists.
        for var in plan.prepared.all_vars() {
            let mentioned = plan.prepared.form.matrix.iter().any(|c| c.mentions(&var));
            if !mentioned {
                if let Some(r) = plan.prepared.range_of(&var) {
                    scan(&r.relation)?;
                }
            }
        }
    }
    Ok(())
}

/// Builds the value list of one Strategy 4 step and reduces it.
fn build_derived_check(
    step: &SemijoinStep,
    earlier: &[DerivedCheck],
    reader: StorageReader<'_>,
    metrics: &Metrics,
) -> Result<DerivedCheck, ExecError> {
    let info = resolve_var(&step.bound_var, &step.range, reader)?;
    // Steps exist only at Strategy 4: a covering permanent index serves
    // the (extended) range by probe instead of a scan.
    let candidates = match range_candidates_indexed(&info, reader, metrics)? {
        Some(c) => c,
        None => range_candidates(&info, reader, metrics)?,
    };
    let rel = reader.relation(&info.relation)?;

    // Project the retained elements onto the linked bound components.
    let mut bound_indices = Vec::with_capacity(step.links.len());
    for link in &step.links {
        let idx = info.schema.attr_index(&link.bound_attr).ok_or_else(|| {
            ExecError::UnknownComponent {
                variable: step.bound_var.to_string(),
                attribute: link.bound_attr.to_string(),
            }
        })?;
        bound_indices.push(idx);
    }

    let mut values: Vec<Box<[Value]>> = Vec::new();
    'outer: for r in candidates {
        let tuple = reader.deref(rel, r)?;
        for m in &step.monadic_filters {
            metrics.record_comparisons(Phase::Collection, 1);
            if !monadic_holds(m, &step.bound_var, tuple, &info.schema, reader)? {
                continue 'outer;
            }
        }
        for &consumed in &step.consumes {
            let check = &earlier[consumed];
            if !check.satisfied(tuple, &info.schema, metrics)? {
                continue 'outer;
            }
        }
        values.push(
            bound_indices
                .iter()
                .map(|&i| tuple.get(i).clone())
                .collect(),
        );
    }

    // Apply the Section 4.4 reductions.
    let (values, constant) = match step.reduction {
        ValueListMode::Full => {
            let constant = if values.is_empty() {
                Some(matches!(step.quantifier, Quantifier::All))
            } else {
                None
            };
            (values, constant)
        }
        ValueListMode::MaxOnly | ValueListMode::MinOnly => {
            if values.is_empty() {
                (values, Some(matches!(step.quantifier, Quantifier::All)))
            } else {
                let want_max = matches!(step.reduction, ValueListMode::MaxOnly);
                let mut best = values[0].clone();
                for row in &values[1..] {
                    metrics.record_comparisons(Phase::Collection, 1);
                    let ord = row[0].try_compare(&best[0])?;
                    let better = if want_max { ord.is_gt() } else { ord.is_lt() };
                    if better {
                        best = row.clone();
                    }
                }
                (vec![best], None)
            }
        }
        ValueListMode::AtMostOne => {
            if values.is_empty() {
                (values, Some(matches!(step.quantifier, Quantifier::All)))
            } else {
                let first = values[0].clone();
                let all_same = values.iter().all(|row| row[0] == first[0]);
                match (step.quantifier, all_same) {
                    // ALL with '=': equal to two different values is impossible.
                    (Quantifier::All, false) => (Vec::new(), Some(false)),
                    (Quantifier::All, true) => (vec![first], None),
                    // SOME with '<>': with two distinct values, any target
                    // value differs from at least one of them.
                    (Quantifier::Some, false) => (Vec::new(), Some(true)),
                    (Quantifier::Some, true) => (vec![first], None),
                }
            }
        }
    };

    let stored = values.len();
    metrics.record_intermediate(Phase::Collection, stored as u64);
    metrics.record_structure_size(&step.produces, stored as u64);

    Ok(DerivedCheck {
        target_var: step.target_var.clone(),
        quantifier: step.quantifier,
        links: step.links.clone(),
        values,
        constant,
        stored_values: stored,
    })
}

/// Runs the collection phase for a plan.
pub fn run_collection(
    plan: &QueryPlan,
    catalog: &Catalog,
    metrics: &Metrics,
) -> Result<CollectionOutput, ExecError> {
    let _span = pascalr_obs::span!("collection");
    // Every tuple read below goes through the backend-generic seam.
    let reader = StorageReader::new(catalog);
    // Resolve combination-phase variables first: which ranges a permanent
    // index can serve decides the scan accounting below.
    let all_vars: Vec<VarName> = plan.prepared.all_vars();
    let mut var_info: BTreeMap<String, VarInfo> = BTreeMap::new();
    for var in &all_vars {
        let range = plan
            .prepared
            .range_of(var)
            .ok_or_else(|| ExecError::PlanInvariant {
                detail: format!("variable {var} has no range"),
            })?
            .clone();
        var_info.insert(var.to_string(), resolve_var(var, &range, reader)?);
    }
    let step_infos: Vec<VarInfo> = plan
        .semijoin_steps
        .iter()
        .map(|s| resolve_var(&s.bound_var, &s.range, reader))
        .collect::<Result<_, _>>()?;

    // Index-backed range lookups are part of the parallel repertoire
    // (Strategy 1+); the baseline stays deliberately naive.  A relation is
    // scan-free when *every* range over it is served by an index probe.
    let use_index_ranges = plan.strategy.parallel_scans();
    let mut index_served: BTreeSet<String> = BTreeSet::new();
    if use_index_ranges {
        let mut fully_served: BTreeMap<String, bool> = BTreeMap::new();
        for info in var_info.values().chain(step_infos.iter()) {
            let servable = range_probe_key(info, reader).is_some();
            fully_served
                .entry(info.relation.to_string())
                .and_modify(|all| *all &= servable)
                .or_insert(servable);
        }
        index_served = fully_served
            .into_iter()
            .filter_map(|(rel, all)| all.then_some(rel))
            .collect();
    }
    record_scans(plan, reader, metrics, &index_served)?;

    // Candidates per combination-phase variable.
    let mut candidates = BTreeMap::new();
    for var in &all_vars {
        let _span = pascalr_obs::span!("collect_candidates", var = var.as_ref());
        let info = &var_info[var.as_ref()];
        let indexed = if use_index_ranges {
            range_candidates_indexed(info, reader, metrics)?
        } else {
            None
        };
        let cands = match indexed {
            Some(c) => c,
            None => range_candidates(info, reader, metrics)?,
        };
        metrics.record_intermediate(Phase::Collection, cands.len() as u64);
        metrics.record_structure_size(&format!("cand_{var}"), cands.len() as u64);
        candidates.insert(var.to_string(), cands);
    }

    // Strategy 4 value lists (must run before the per-conjunction single
    // lists so their derived predicates can restrict them).
    let mut derived: Vec<DerivedCheck> = Vec::new();
    for step in &plan.semijoin_steps {
        let _span = pascalr_obs::span!("collect_derived", var = step.bound_var.as_ref());
        let check = build_derived_check(step, &derived, reader, metrics)?;
        derived.push(check);
    }

    // Per-conjunction single lists and indirect joins.
    let mut per_conjunction = Vec::with_capacity(plan.prepared.form.matrix.len());
    for (ci, conj) in plan.prepared.form.matrix.iter().enumerate() {
        let _span = pascalr_obs::span!("collect_structures", conjunction = ci + 1);
        let mut structures = ConjStructures::default();

        // Variables involved in this conjunction (through terms or derived
        // predicates).
        let mut involved: Vec<String> = conj
            .vars()
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        for &s in &plan.derived_predicates[ci] {
            let tv = derived[s].target_var.to_string();
            if !involved.contains(&tv) && var_info.contains_key(&tv) {
                involved.push(tv);
            }
        }

        // Single lists.
        for var in &involved {
            let Some(info) = var_info.get(var) else {
                continue;
            };
            let rel = reader.relation(&info.relation)?;
            let monadic: Vec<&Term> = conj.monadic_terms_over(var);
            let checks: Vec<&DerivedCheck> = plan.derived_predicates[ci]
                .iter()
                .map(|&s| &derived[s])
                .filter(|c| c.target_var.as_ref() == var.as_str())
                .collect();
            let mut list = Vec::new();
            for &r in &candidates[var] {
                let tuple = reader.deref(rel, r)?;
                let mut keep = true;
                for m in &monadic {
                    metrics.record_comparisons(Phase::Collection, 1);
                    if !monadic_holds(m, var, tuple, &info.schema, reader)? {
                        keep = false;
                        break;
                    }
                }
                if keep {
                    for c in &checks {
                        if !c.satisfied(tuple, &info.schema, metrics)? {
                            keep = false;
                            break;
                        }
                    }
                }
                if keep {
                    list.push(r);
                }
            }
            metrics.record_intermediate(Phase::Collection, list.len() as u64);
            metrics.record_structure_size(&format!("sl_{var}_c{}", ci + 1), list.len() as u64);
            structures.single_lists.insert(var.clone(), list);
        }

        // Indirect joins for dyadic terms.  The assembly order the
        // combination phase will use decides which side of an equality
        // term gets probed — and therefore which side a covering
        // permanent index lets us skip the whole structure for.
        let assembly_order = crate::combine::assembly_var_order(conj, &all_vars, |v| {
            structures.single_lists.contains_key(v)
        });
        for term in conj.terms.iter().filter(|t| t.is_dyadic()) {
            let vars: Vec<VarName> = term.vars().into_iter().collect();
            let (left_var, right_var) = (vars[0].clone(), vars[1].clone());
            let (Some(left_info), Some(right_info)) = (
                var_info.get(left_var.as_ref()),
                var_info.get(right_var.as_ref()),
            ) else {
                // One side is handled by a semijoin step; no indirect join
                // needs to be materialized.
                continue;
            };
            let left_rel = reader.relation(&left_info.relation)?;
            let right_rel = reader.relation(&right_info.relation)?;

            // Strategy 2: the one-step evaluation restricts the indirect
            // join by the conjunction's monadic terms (single lists);
            // otherwise the full candidate sets are paired.
            let left_refs: &[ElemRef] = if plan.strategy.one_step_nested() {
                structures
                    .single_lists
                    .get(left_var.as_ref())
                    .map_or_else(|| candidates[left_var.as_ref()].as_slice(), Vec::as_slice)
            } else {
                candidates[left_var.as_ref()].as_slice()
            };
            let right_refs: &[ElemRef] = if plan.strategy.one_step_nested() {
                structures
                    .single_lists
                    .get(right_var.as_ref())
                    .map_or_else(|| candidates[right_var.as_ref()].as_slice(), Vec::as_slice)
            } else {
                candidates[right_var.as_ref()].as_slice()
            };

            let (left_attr, op, _, right_attr) =
                term.as_dyadic_over(&left_var)
                    .ok_or_else(|| ExecError::PlanInvariant {
                        detail: format!("term {term} is not dyadic over {left_var}"),
                    })?;
            let left_idx = left_info.schema.attr_index(&left_attr).ok_or_else(|| {
                ExecError::UnknownComponent {
                    variable: left_var.to_string(),
                    attribute: left_attr.to_string(),
                }
            })?;
            let right_idx = right_info.schema.attr_index(&right_attr).ok_or_else(|| {
                ExecError::UnknownComponent {
                    variable: right_var.to_string(),
                    attribute: right_attr.to_string(),
                }
            })?;

            let mut pairs = Vec::new();
            if op == CompareOp::Eq {
                // The paper's index + test scheme — with the first step
                // omitted when a permanent index exists (Section 3.2): the
                // side assembled *later* by the combination phase is the
                // probed one; a maintained catalog index on that component
                // makes both the ephemeral index and the materialized
                // indirect join unnecessary (the combination stages probe
                // the permanent index per prefix row instead).
                let left_pos = assembly_order
                    .iter()
                    .position(|v| v.as_ref() == left_var.as_ref());
                let right_pos = assembly_order
                    .iter()
                    .position(|v| v.as_ref() == right_var.as_ref());
                if let (Some(lp), Some(rp)) = (left_pos, right_pos) {
                    let (probed_info, probed_attr) = if lp > rp {
                        (left_info, left_attr.as_ref())
                    } else {
                        (right_info, right_attr.as_ref())
                    };
                    if let Some(use_) =
                        reader.permanent_index(&probed_info.relation, &[probed_attr])
                    {
                        if use_.rebuilt {
                            metrics.record_index_build(Phase::Collection);
                        }
                        continue;
                    }
                }
                // No permanent cover: build an ephemeral hash index on the
                // smaller side and probe from the larger (the cost model
                // knows both cardinalities; the paper leaves the choice
                // open).  Pairs always come out as (left, right).
                metrics.record_index_build(Phase::Collection);
                let build_right = right_refs.len() <= left_refs.len();
                let (build_refs, build_rel, build_idx, probe_refs, probe_rel, probe_idx) =
                    if build_right {
                        (
                            right_refs, right_rel, right_idx, left_refs, left_rel, left_idx,
                        )
                    } else {
                        (
                            left_refs, left_rel, left_idx, right_refs, right_rel, right_idx,
                        )
                    };
                let mut index: HashMap<&Value, Vec<ElemRef>> = HashMap::new();
                for &b in build_refs {
                    let t = reader.deref(build_rel, b)?;
                    index.entry(t.get(build_idx)).or_default().push(b);
                }
                for &p in probe_refs {
                    let pt = reader.deref(probe_rel, p)?;
                    metrics.record_index_probes(Phase::Collection, 1);
                    if let Some(matches) = index.get(pt.get(probe_idx)) {
                        for &b in matches {
                            pairs.push(if build_right { (p, b) } else { (b, p) });
                        }
                    }
                }
            } else {
                for &l in left_refs {
                    let lt = reader.deref(left_rel, l)?;
                    let lv = lt.get(left_idx);
                    for &r in right_refs {
                        let rt = reader.deref(right_rel, r)?;
                        metrics.record_comparisons(Phase::Collection, 1);
                        if op.eval(lv, rt.get(right_idx))? {
                            pairs.push((l, r));
                        }
                    }
                }
            }

            let mut by_left: HashMap<ElemRef, Vec<ElemRef>> = HashMap::new();
            let mut by_right: HashMap<ElemRef, Vec<ElemRef>> = HashMap::new();
            for &(l, r) in &pairs {
                by_left.entry(l).or_default().push(r);
                by_right.entry(r).or_default().push(l);
            }
            metrics.record_intermediate(Phase::Collection, pairs.len() as u64);
            metrics.record_structure_size(
                &format!("ij_{}_{}_c{}", left_var, right_var, ci + 1),
                pairs.len() as u64,
            );
            structures.indirect_joins.push(IndirectJoin {
                term: term.clone(),
                left_var,
                right_var,
                pairs,
                by_left,
                by_right,
            });
        }

        per_conjunction.push(structures);
    }

    Ok(CollectionOutput {
        var_info,
        candidates,
        per_conjunction,
        derived,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pascalr_planner::{plan, PlanOptions, StrategyLevel};
    use pascalr_workload::{figure1_sample_database, query_by_id};

    fn collect(query: &str, level: StrategyLevel) -> (QueryPlan, CollectionOutput, Metrics) {
        let cat = figure1_sample_database().unwrap();
        let sel = query_by_id(query).unwrap().parse(&cat).unwrap();
        let p = plan(&sel, &cat, level, PlanOptions::default());
        let metrics = Metrics::new();
        let out = run_collection(&p, &cat, &metrics).unwrap();
        (p, out, metrics)
    }

    #[test]
    fn baseline_scans_once_per_term_occurrence() {
        let (_, _, metrics) = collect("ex2.1", StrategyLevel::S0Baseline);
        let snap = metrics.snapshot();
        // Example 2.2 has 3 conjunctions with 8 term occurrences in total;
        // each monadic term scans 1 relation, each dyadic term scans 2.
        assert!(snap.max_scans_per_relation() > 1);
        assert!(snap.total().relation_scans >= 8);
    }

    #[test]
    fn parallel_scans_read_each_relation_once() {
        let (_, _, metrics) = collect("ex2.1", StrategyLevel::S1Parallel);
        let snap = metrics.snapshot();
        assert_eq!(snap.max_scans_per_relation(), 1);
        assert_eq!(snap.total().relation_scans, 4);
    }

    #[test]
    fn one_step_restricts_indirect_joins() {
        let (_, s1, _) = collect("ex2.1", StrategyLevel::S1Parallel);
        let (_, s2, _) = collect("ex2.1", StrategyLevel::S2OneStep);
        let total_ij = |out: &CollectionOutput| -> usize {
            out.per_conjunction
                .iter()
                .flat_map(|c| c.indirect_joins.iter())
                .map(|ij| ij.pairs.len())
                .sum()
        };
        assert!(
            total_ij(&s2) <= total_ij(&s1),
            "one-step evaluation must not enlarge indirect joins"
        );
        assert!(
            total_ij(&s2) < total_ij(&s1),
            "and for Example 2.2 it strictly shrinks them"
        );
    }

    #[test]
    fn extended_ranges_shrink_candidate_sets() {
        let (_, s2, _) = collect("ex2.1", StrategyLevel::S2OneStep);
        let (_, s3, _) = collect("ex2.1", StrategyLevel::S3ExtendedRanges);
        // employees: only professors remain in the candidate set at S3.
        assert_eq!(s2.candidates["e"].len(), 6);
        assert_eq!(s3.candidates["e"].len(), 3);
        // papers: only the 1977 papers remain.
        assert!(s3.candidates["p"].len() < s2.candidates["p"].len());
    }

    #[test]
    fn strategy4_builds_value_lists_and_derived_predicates() {
        let (p, out, metrics) = collect("ex2.1", StrategyLevel::S4CollectionQuantifiers);
        assert_eq!(p.semijoin_steps.len(), 3);
        assert_eq!(out.derived.len(), 3);
        // The pset value list contains the professors' 1977 papers (3 of
        // them on the sample database).
        let pset = &out.derived[2];
        assert_eq!(pset.quantifier, Quantifier::All);
        assert_eq!(pset.stored_values, 3);
        // Structure sizes are recorded under the plan's names.
        let snap = metrics.snapshot();
        assert!(snap.structure_size(&p.semijoin_steps[0].produces) > 0);
    }

    #[test]
    fn value_list_reductions_store_single_values() {
        // q05: SOME q (p.pyear < q.pyear) — only the maximum year is stored.
        let (p, out, _) = collect("q05", StrategyLevel::S4CollectionQuantifiers);
        assert_eq!(p.semijoin_steps.len(), 1);
        assert_eq!(out.derived[0].stored_values, 1);
        assert_eq!(out.derived[0].values[0][0], Value::int(1977));

        // q06: ALL q (p.pyear <= q.pyear) — only the minimum year is stored.
        let (_, out, _) = collect("q06", StrategyLevel::S4CollectionQuantifiers);
        assert_eq!(out.derived[0].stored_values, 1);
        assert_eq!(out.derived[0].values[0][0], Value::int(1975));

        // q07: ALL t (e.enr = t.tenr) with several distinct tenr values —
        // the predicate collapses to constant false.
        let (_, out, _) = collect("q07", StrategyLevel::S4CollectionQuantifiers);
        assert_eq!(out.derived[0].constant, Some(false));
        assert_eq!(out.derived[0].stored_values, 0);

        // q08: SOME t (e.enr <> t.tenr) with several distinct values —
        // constant true.
        let (_, out, _) = collect("q08", StrategyLevel::S4CollectionQuantifiers);
        assert_eq!(out.derived[0].constant, Some(true));
    }

    #[test]
    fn single_lists_and_indirect_joins_follow_figure_2() {
        let (_, out, metrics) = collect("ex2.1", StrategyLevel::S2OneStep);
        // The conjunction with courses/timetable terms has an sl for c
        // (sophomore-level courses: 2 on the sample db) and indirect joins.
        let snap = metrics.snapshot();
        let sl_sizes: Vec<u64> = snap
            .structure_sizes
            .iter()
            .filter(|(k, _)| k.starts_with("sl_c"))
            .map(|(_, &v)| v)
            .collect();
        assert!(
            sl_sizes.contains(&2),
            "sl_csoph should hold 2 references: {sl_sizes:?}"
        );
        assert!(out
            .per_conjunction
            .iter()
            .any(|c| !c.indirect_joins.is_empty()));
    }

    #[test]
    fn unknown_relation_in_plan_is_reported() {
        let cat = figure1_sample_database().unwrap();
        let sel = pascalr_calculus::Selection::new(
            "q",
            vec![pascalr_calculus::ComponentRef::new("x", "enr")],
            vec![pascalr_calculus::RangeDecl::new(
                "x",
                pascalr_calculus::RangeExpr::relation("nosuch"),
            )],
            pascalr_calculus::Formula::truth(),
        );
        let p = plan(
            &sel,
            &cat,
            StrategyLevel::S1Parallel,
            PlanOptions::default(),
        );
        let metrics = Metrics::new();
        assert!(run_collection(&p, &cat, &metrics).is_err());
    }
}
