//! A small fixed-capacity buffer pool over [`StorageFs`] page files.
//!
//! The pool caches whole [`PAGE_SIZE`] frames keyed by `(file, page_no)`,
//! with clock (second-chance) eviction and dirty tracking: evicting a
//! dirty frame writes it back through the filesystem first. Access is
//! closure-scoped — [`BufferPool::with_page`] pins the frame for exactly
//! the closure's lifetime, so pins can never leak — and every hit, miss
//! and eviction ticks a shared [`Counter`] so cache behaviour shows up in
//! the engine's metrics registry.

use std::collections::HashMap;

use pascalr_obs::Counter;
use pascalr_sync::{Arc, Mutex};

use crate::error::StorageError;
use crate::fs::StorageFs;
use crate::slotted::PAGE_SIZE;

/// Shared counters the pool ticks; hand the same `Arc`s to a metrics
/// registry to expose them.
#[derive(Debug, Clone)]
pub struct PoolCounters {
    /// Page requests served from a resident frame.
    pub hits: Arc<Counter>,
    /// Page requests that had to read the filesystem.
    pub misses: Arc<Counter>,
    /// Frames evicted to make room (dirty ones are written back first).
    pub evictions: Arc<Counter>,
}

impl PoolCounters {
    /// Counters not attached to any registry (tests, standalone use).
    pub fn detached() -> PoolCounters {
        PoolCounters {
            hits: Arc::new(Counter::new()),
            misses: Arc::new(Counter::new()),
            evictions: Arc::new(Counter::new()),
        }
    }
}

#[derive(Debug)]
struct Frame {
    file: Arc<str>,
    page_no: u64,
    data: Vec<u8>,
    dirty: bool,
    referenced: bool,
    occupied: bool,
}

impl Frame {
    fn empty() -> Frame {
        Frame {
            file: Arc::from(""),
            page_no: 0,
            data: Vec::new(),
            dirty: false,
            referenced: false,
            occupied: false,
        }
    }
}

#[derive(Debug)]
struct PoolInner {
    frames: Vec<Frame>,
    /// `(file, page_no)` → frame index for resident pages.
    map: HashMap<(Arc<str>, u64), usize>,
    /// Clock hand for second-chance eviction.
    hand: usize,
}

/// Fixed-capacity page cache with clock eviction and dirty write-back.
#[derive(Debug)]
pub struct BufferPool {
    inner: Mutex<PoolInner>,
    capacity: usize,
    counters: PoolCounters,
}

impl BufferPool {
    /// A pool holding at most `capacity` frames (clamped to ≥ 1).
    pub fn new(capacity: usize, counters: PoolCounters) -> BufferPool {
        let capacity = capacity.max(1);
        BufferPool {
            inner: Mutex::new(PoolInner {
                frames: (0..capacity).map(|_| Frame::empty()).collect(),
                map: HashMap::new(),
                hand: 0,
            }),
            capacity,
            counters,
        }
    }

    /// Maximum number of resident frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of frames currently holding a page.
    pub fn resident(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// The pool's shared counters.
    pub fn counters(&self) -> &PoolCounters {
        &self.counters
    }

    /// Pin page `page_no` of `file` and run `f` over its bytes. Loads the
    /// page through `fs` on a miss, evicting (with write-back) if the pool
    /// is full. The pin lasts exactly as long as `f` runs.
    pub fn with_page<R>(
        &self,
        fs: &dyn StorageFs,
        file: &Arc<str>,
        page_no: u64,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R, StorageError> {
        let mut inner = self.inner.lock();
        let idx = self.frame_for(&mut inner, fs, file, page_no, true)?;
        inner.frames[idx].referenced = true;
        Ok(f(&inner.frames[idx].data))
    }

    /// Install `data` as page `page_no` of `file` and mark the frame
    /// dirty. The bytes reach the filesystem on eviction or
    /// [`BufferPool::flush`] — callers decide the durability point.
    pub fn write_page(
        &self,
        fs: &dyn StorageFs,
        file: &Arc<str>,
        page_no: u64,
        data: &[u8],
    ) -> Result<(), StorageError> {
        if data.len() != PAGE_SIZE {
            return Err(StorageError::corrupt(format!(
                "buffered page write of {} byte(s), expected {PAGE_SIZE}",
                data.len()
            )));
        }
        let mut inner = self.inner.lock();
        let idx = self.frame_for(&mut inner, fs, file, page_no, false)?;
        let frame = &mut inner.frames[idx];
        frame.data.clear();
        frame.data.extend_from_slice(data);
        frame.dirty = true;
        frame.referenced = true;
        Ok(())
    }

    /// Write every dirty frame back through `fs` (without evicting).
    /// Durability still requires the caller to `fs.sync(...)` the file.
    pub fn flush(&self, fs: &dyn StorageFs) -> Result<(), StorageError> {
        let mut inner = self.inner.lock();
        for frame in &mut inner.frames {
            if frame.occupied && frame.dirty {
                fs.write_at(&frame.file, frame.page_no * PAGE_SIZE as u64, &frame.data)?;
                frame.dirty = false;
            }
        }
        Ok(())
    }

    /// Drop every frame belonging to `file` without writing it back —
    /// used when a checkpoint generation's files are deleted.
    pub fn discard_file(&self, file: &str) {
        let mut inner = self.inner.lock();
        inner.map.retain(|(f, _), _| &**f != file);
        for frame in &mut inner.frames {
            if frame.occupied && &*frame.file == file {
                *frame = Frame::empty();
            }
        }
    }

    /// Find (or load) the frame for `(file, page_no)`. `load` controls
    /// whether a miss reads the page from `fs` or starts from a zeroed
    /// frame (for fresh writes).
    fn frame_for(
        &self,
        inner: &mut PoolInner,
        fs: &dyn StorageFs,
        file: &Arc<str>,
        page_no: u64,
        load: bool,
    ) -> Result<usize, StorageError> {
        let key = (Arc::clone(file), page_no);
        if let Some(&idx) = inner.map.get(&key) {
            self.counters.hits.inc();
            return Ok(idx);
        }
        self.counters.misses.inc();
        let idx = self.victim(inner, fs)?;
        let data = if load {
            fs.read_at(file, page_no * PAGE_SIZE as u64, PAGE_SIZE)?
        } else {
            vec![0u8; PAGE_SIZE]
        };
        inner.frames[idx] = Frame {
            file: Arc::clone(file),
            page_no,
            data,
            dirty: false,
            referenced: false,
            occupied: true,
        };
        inner.map.insert(key, idx);
        Ok(idx)
    }

    /// Pick a frame to (re)use: a free one if any, else sweep the clock
    /// hand, giving referenced frames a second chance, and evict the
    /// first unreferenced frame (writing it back if dirty).
    fn victim(&self, inner: &mut PoolInner, fs: &dyn StorageFs) -> Result<usize, StorageError> {
        if let Some(idx) = inner.frames.iter().position(|f| !f.occupied) {
            return Ok(idx);
        }
        // Two full sweeps always find a victim: the first clears every
        // reference bit, the second takes the first frame.
        for _ in 0..2 * self.capacity {
            let idx = inner.hand;
            inner.hand = (inner.hand + 1) % self.capacity;
            if inner.frames[idx].referenced {
                inner.frames[idx].referenced = false;
                continue;
            }
            let frame = &mut inner.frames[idx];
            if frame.dirty {
                fs.write_at(&frame.file, frame.page_no * PAGE_SIZE as u64, &frame.data)?;
            }
            let key = (Arc::clone(&frame.file), frame.page_no);
            inner.map.remove(&key);
            inner.frames[idx] = Frame::empty();
            self.counters.evictions.inc();
            return Ok(idx);
        }
        Err(StorageError::corrupt(
            "clock sweep found no victim in a full pool".to_string(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::MemFs;

    fn page_of(byte: u8) -> Vec<u8> {
        vec![byte; PAGE_SIZE]
    }

    #[test]
    fn write_read_hit_miss_accounting() {
        let fs = MemFs::new();
        let pool = BufferPool::new(4, PoolCounters::detached());
        let file: Arc<str> = Arc::from("data.1.pages");
        pool.write_page(&fs, &file, 0, &page_of(0xaa)).unwrap();
        // First write is a miss (frame not resident), read after is a hit.
        assert_eq!(pool.counters().misses.get(), 1);
        let first = pool.with_page(&fs, &file, 0, |bytes| bytes[0]).unwrap();
        assert_eq!(first, 0xaa);
        assert_eq!(pool.counters().hits.get(), 1);
        // Flush then re-read through a cold pool: bytes reached the fs.
        pool.flush(&fs).unwrap();
        fs.sync("data.1.pages").unwrap();
        let cold = BufferPool::new(4, PoolCounters::detached());
        let got = cold.with_page(&fs, &file, 0, |bytes| bytes[0]).unwrap();
        assert_eq!(got, 0xaa);
        assert_eq!(cold.counters().misses.get(), 1);
    }

    #[test]
    fn eviction_writes_back_dirty_frames() {
        let fs = MemFs::new();
        let pool = BufferPool::new(2, PoolCounters::detached());
        let file: Arc<str> = Arc::from("f");
        for page_no in 0..5u64 {
            pool.write_page(&fs, &file, page_no, &page_of(page_no as u8))
                .unwrap();
        }
        assert!(pool.counters().evictions.get() >= 3);
        assert_eq!(pool.resident(), 2);
        pool.flush(&fs).unwrap();
        // Every page must be readable back with its own byte pattern,
        // whether it was evicted (written back) or flushed.
        for page_no in 0..5u64 {
            let b = pool
                .with_page(&fs, &file, page_no, |bytes| bytes[100])
                .unwrap();
            assert_eq!(b, page_no as u8, "page {page_no} lost on eviction");
        }
    }

    #[test]
    fn clock_gives_second_chances() {
        let fs = MemFs::new();
        let pool = BufferPool::new(3, PoolCounters::detached());
        let file: Arc<str> = Arc::from("f");
        for page_no in 0..3u64 {
            pool.write_page(&fs, &file, page_no, &page_of(page_no as u8))
                .unwrap();
        }
        // Faulting page 3 sweeps every reference bit clear and evicts one
        // frame. Then touch page 1: its fresh reference bit must save it
        // from the next eviction, which takes an untouched frame instead.
        pool.write_page(&fs, &file, 3, &page_of(3)).unwrap();
        pool.with_page(&fs, &file, 1, |_| ()).unwrap();
        pool.write_page(&fs, &file, 4, &page_of(4)).unwrap();
        let hits_before = pool.counters().hits.get();
        pool.with_page(&fs, &file, 1, |_| ()).unwrap();
        assert_eq!(
            pool.counters().hits.get(),
            hits_before + 1,
            "page 1 evicted despite its reference bit"
        );
    }

    #[test]
    fn discard_file_forgets_without_write_back() {
        let fs = MemFs::new();
        let pool = BufferPool::new(4, PoolCounters::detached());
        let file: Arc<str> = Arc::from("old");
        pool.write_page(&fs, &file, 0, &page_of(1)).unwrap();
        pool.discard_file("old");
        assert_eq!(pool.resident(), 0);
        assert_eq!(fs.len("old").unwrap(), 0, "discard must not write back");
    }

    #[test]
    fn rejects_short_page_writes() {
        let fs = MemFs::new();
        let pool = BufferPool::new(1, PoolCounters::detached());
        let file: Arc<str> = Arc::from("f");
        assert!(pool.write_page(&fs, &file, 0, &[1, 2, 3]).is_err());
    }
}
