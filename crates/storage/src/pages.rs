//! The costing view of page-level storage.
//!
//! The original PASCAL/R system read disk-resident relations
//! "one-element-at-a-time" (Section 4.1, citing the paper's reference 15),
//! and the paper's cost arguments are about *how often* relations are read
//! and how large intermediate structures become — not absolute I/O
//! latencies. [`PageModel`] captures exactly that: a relation of `n`
//! elements occupies `ceil(n / tuples_per_page)` pages, a full scan reads
//! all of them, and a point access through a selected variable or index
//! probe reads one page.
//!
//! Since the slotted-heap backend landed (see [`crate::backend`]), this is
//! no longer a simulation of a hypothetical disk: `tuples_per_page` is the
//! **blocking factor**, and the engine has one source of truth for it.
//! When a database is opened on the persistent backend, the backend's
//! *measured* records-per-page figure (real [`PAGE_SIZE`] slotted pages
//! packed at the last checkpoint, see
//! [`StorageBackend::tuples_per_page`]) is installed into the catalog's
//! `PageModel`, and `Catalog::pages_of` delegates to the backend's real
//! per-relation page counts. The in-memory default keeps the historical
//! `tuples_per_page = 32` so cost numbers stay comparable with earlier
//! experiments.
//!
//! [`PAGE_SIZE`]: crate::slotted::PAGE_SIZE
//! [`StorageBackend::tuples_per_page`]: crate::backend::StorageBackend::tuples_per_page

use serde::{Deserialize, Serialize};

/// Configuration of the page model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageModel {
    /// Number of relation elements stored per page.
    pub tuples_per_page: u64,
    /// Simulated cost (arbitrary units) of reading one page sequentially.
    pub sequential_page_cost: u64,
    /// Simulated cost of reading one page at random (point access).
    pub random_page_cost: u64,
}

impl Default for PageModel {
    fn default() -> Self {
        PageModel {
            tuples_per_page: 32,
            sequential_page_cost: 1,
            random_page_cost: 4,
        }
    }
}

impl PageModel {
    /// A page model with a given blocking factor and default costs.
    pub fn with_tuples_per_page(tuples_per_page: u64) -> Self {
        PageModel {
            tuples_per_page: tuples_per_page.max(1),
            ..Default::default()
        }
    }

    /// Number of pages a relation of `cardinality` elements occupies.
    pub fn pages_for(&self, cardinality: u64) -> u64 {
        if cardinality == 0 {
            0
        } else {
            cardinality.div_ceil(self.tuples_per_page)
        }
    }

    /// Simulated cost of scanning a relation of `cardinality` elements.
    pub fn scan_cost(&self, cardinality: u64) -> u64 {
        self.pages_for(cardinality) * self.sequential_page_cost
    }

    /// Simulated cost of `n` point accesses.
    pub fn point_cost(&self, n: u64) -> u64 {
        n * self.random_page_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_round_up() {
        let m = PageModel::with_tuples_per_page(32);
        assert_eq!(m.pages_for(0), 0);
        assert_eq!(m.pages_for(1), 1);
        assert_eq!(m.pages_for(32), 1);
        assert_eq!(m.pages_for(33), 2);
        assert_eq!(m.pages_for(64), 2);
        assert_eq!(m.pages_for(65), 3);
    }

    #[test]
    fn zero_blocking_factor_is_clamped() {
        let m = PageModel::with_tuples_per_page(0);
        assert_eq!(m.tuples_per_page, 1);
        assert_eq!(m.pages_for(5), 5);
    }

    #[test]
    fn costs_scale_with_pages_and_accesses() {
        let m = PageModel::default();
        assert_eq!(m.scan_cost(64), 2 * m.sequential_page_cost);
        assert_eq!(m.point_cost(3), 3 * m.random_page_cost);
        assert!(m.point_cost(1) > m.scan_cost(1) / 4);
    }
}
