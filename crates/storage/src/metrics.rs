//! Access metrics: the quantities the paper's cost arguments are stated in.
//!
//! The paper argues about (a) how often each database relation is read,
//! (b) how large the intermediate reference structures get, and (c) how much
//! combinatorial work the combination phase performs.  The executor reports
//! all of these through a [`Metrics`] handle that is cheap to clone and
//! thread-safe, so that benches can attribute work to the three phases of
//! the evaluation procedure (collection, combination, construction).
//!
//! # Atomic ordering policy
//!
//! Every atomic access in this module is `Ordering::Relaxed`, deliberately:
//!
//! * The atomics are **pure statistics accumulators**.  Nothing is
//!   published *through* them: no thread reads a counter to decide whether
//!   another thread's writes to unrelated memory are visible, so none of
//!   the acquire/release edges that stronger orderings buy would ever be
//!   relied upon.  Relaxed still guarantees per-counter atomicity and
//!   modification-order consistency, which is exactly the contract a
//!   `fetch_add` tally needs.
//! * Cross-counter exactness is provided by *join/scope edges, not
//!   orderings*: callers that assert on totals (tests, benches, the
//!   oracle) read a [`MetricsSnapshot`] after joining the worker threads,
//!   and thread join is already a happens-before edge for every Relaxed
//!   write the worker made.  A snapshot taken concurrently with live
//!   recorders is documented as a monotone point-in-time sample
//!   ([`Metrics::snapshot`]), so it needs no seq-cst totality either.
//! * [`Metrics::reset`] is likewise Relaxed and documented as requiring
//!   quiescence: resetting while recorders are live zeroes each counter
//!   atomically but not the set of counters as a unit — the same unit of
//!   consistency every multi-counter operation here has.
//!
//! Policy for future changes: a counter that stays a statistic may be
//! added as Relaxed with no further comment, but any atomic whose value is
//! *read to make a cross-thread decision* (a stop flag, an epoch gate, a
//! once-guard) must use acquire/release (or stronger) and carry a comment
//! naming the write it synchronizes with.  The loom model suite
//! (`RUSTFLAGS="--cfg loom" cargo test`) is the place to prove such an
//! addition right: under `--cfg loom` these atomics compile to the
//! vendored model checker's and every access becomes an explored
//! schedulable point.

use pascalr_sync::atomic::{AtomicU64, Ordering};
use pascalr_sync::Arc;
use std::collections::BTreeMap;

use pascalr_sync::Mutex;
use serde::{Deserialize, Serialize};

/// The phase of the evaluation procedure a measurement belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Collection phase: range expressions and single join terms.
    Collection,
    /// Combination phase: conjunctions, disjunction, quantifiers.
    Combination,
    /// Construction phase: dereference and component projection.
    Construction,
    /// Work outside the three phases (normalization, planning, loading).
    Other,
}

impl Phase {
    /// All phases in reporting order.
    pub const ALL: [Phase; 4] = [
        Phase::Collection,
        Phase::Combination,
        Phase::Construction,
        Phase::Other,
    ];

    fn index(self) -> usize {
        match self {
            Phase::Collection => 0,
            Phase::Combination => 1,
            Phase::Construction => 2,
            Phase::Other => 3,
        }
    }

    /// Human-readable phase name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Collection => "collection",
            Phase::Combination => "combination",
            Phase::Construction => "construction",
            Phase::Other => "other",
        }
    }
}

/// Plain-old-data snapshot of one phase's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Number of full relation scans (`FOR EACH r IN rel` loops over a
    /// database relation).
    pub relation_scans: u64,
    /// Number of elements read from database relations.
    pub tuples_read: u64,
    /// Number of simulated pages read from database relations.
    pub pages_read: u64,
    /// Number of indexes built.
    pub index_builds: u64,
    /// Number of index probes.
    pub index_probes: u64,
    /// Number of tuples materialized into intermediate structures (single
    /// lists, indirect joins, reference relations, value lists).
    pub intermediate_tuples: u64,
    /// Number of join-term / value comparisons evaluated.
    pub comparisons: u64,
    /// Number of reference dereferences (construction phase work).
    pub dereferences: u64,
}

impl Counters {
    /// Component-wise sum.
    pub fn add(&self, other: &Counters) -> Counters {
        Counters {
            relation_scans: self.relation_scans + other.relation_scans,
            tuples_read: self.tuples_read + other.tuples_read,
            pages_read: self.pages_read + other.pages_read,
            index_builds: self.index_builds + other.index_builds,
            index_probes: self.index_probes + other.index_probes,
            intermediate_tuples: self.intermediate_tuples + other.intermediate_tuples,
            comparisons: self.comparisons + other.comparisons,
            dereferences: self.dereferences + other.dereferences,
        }
    }

    /// Component-wise saturating difference (`self - other`).
    pub fn saturating_sub(&self, other: &Counters) -> Counters {
        Counters {
            relation_scans: self.relation_scans.saturating_sub(other.relation_scans),
            tuples_read: self.tuples_read.saturating_sub(other.tuples_read),
            pages_read: self.pages_read.saturating_sub(other.pages_read),
            index_builds: self.index_builds.saturating_sub(other.index_builds),
            index_probes: self.index_probes.saturating_sub(other.index_probes),
            intermediate_tuples: self
                .intermediate_tuples
                .saturating_sub(other.intermediate_tuples),
            comparisons: self.comparisons.saturating_sub(other.comparisons),
            dereferences: self.dereferences.saturating_sub(other.dereferences),
        }
    }

    /// True when every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == Counters::default()
    }
}

#[derive(Default)]
struct PhaseCells {
    relation_scans: AtomicU64,
    tuples_read: AtomicU64,
    pages_read: AtomicU64,
    index_builds: AtomicU64,
    index_probes: AtomicU64,
    intermediate_tuples: AtomicU64,
    comparisons: AtomicU64,
    dereferences: AtomicU64,
}

impl PhaseCells {
    fn snapshot(&self) -> Counters {
        Counters {
            relation_scans: self.relation_scans.load(Ordering::Relaxed),
            tuples_read: self.tuples_read.load(Ordering::Relaxed),
            pages_read: self.pages_read.load(Ordering::Relaxed),
            index_builds: self.index_builds.load(Ordering::Relaxed),
            index_probes: self.index_probes.load(Ordering::Relaxed),
            intermediate_tuples: self.intermediate_tuples.load(Ordering::Relaxed),
            comparisons: self.comparisons.load(Ordering::Relaxed),
            dereferences: self.dereferences.load(Ordering::Relaxed),
        }
    }
}

#[derive(Default)]
struct MetricsInner {
    phases: [PhaseCells; 4],
    /// Scan counts per database relation (the paper's "each relation is read
    /// no more than once" claim, Experiment E6).
    relation_scan_counts: Mutex<BTreeMap<String, u64>>,
    /// Final sizes of named intermediate structures (Figure 2 / E2).
    structure_sizes: Mutex<BTreeMap<String, u64>>,
}

/// Thread-safe, cheaply clonable metrics handle.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Arc<MetricsInner>,
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("snapshot", &self.snapshot().total())
            .finish()
    }
}

impl Metrics {
    /// Creates a fresh metrics handle with all counters at zero.
    pub fn new() -> Self {
        Metrics::default()
    }

    fn cells(&self, phase: Phase) -> &PhaseCells {
        &self.inner.phases[phase.index()]
    }

    /// Records a full scan of a named database relation reading
    /// `tuples` elements spread over `pages` pages.
    pub fn record_scan(&self, phase: Phase, relation: &str, tuples: u64, pages: u64) {
        let c = self.cells(phase);
        c.relation_scans.fetch_add(1, Ordering::Relaxed);
        c.tuples_read.fetch_add(tuples, Ordering::Relaxed);
        c.pages_read.fetch_add(pages, Ordering::Relaxed);
        let mut map = self.inner.relation_scan_counts.lock();
        *map.entry(relation.to_string()).or_insert(0) += 1;
    }

    /// Records additional element reads outside a full scan (e.g. point
    /// lookups through a selected variable).
    pub fn record_tuple_reads(&self, phase: Phase, tuples: u64, pages: u64) {
        let c = self.cells(phase);
        c.tuples_read.fetch_add(tuples, Ordering::Relaxed);
        c.pages_read.fetch_add(pages, Ordering::Relaxed);
    }

    /// Records construction of an index.
    pub fn record_index_build(&self, phase: Phase) {
        self.cells(phase)
            .index_builds
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` index probes.
    pub fn record_index_probes(&self, phase: Phase, n: u64) {
        self.cells(phase)
            .index_probes
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` tuples materialized into intermediate structures.
    pub fn record_intermediate(&self, phase: Phase, n: u64) {
        self.cells(phase)
            .intermediate_tuples
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` comparisons.
    pub fn record_comparisons(&self, phase: Phase, n: u64) {
        self.cells(phase)
            .comparisons
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` dereferences.
    pub fn record_dereferences(&self, phase: Phase, n: u64) {
        self.cells(phase)
            .dereferences
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Records (or overwrites) the final size of a named intermediate
    /// structure, e.g. `sl_csoph` or `ij_c_t`.
    pub fn record_structure_size(&self, name: &str, size: u64) {
        self.inner
            .structure_sizes
            .lock()
            .insert(name.to_string(), size);
    }

    /// Takes a point-in-time copy of every counter.
    ///
    /// Each counter is read atomically and every counter is monotone, but
    /// the snapshot is not a cross-counter atomic cut: a snapshot taken
    /// while recorders are live may see counter A from before an event and
    /// counter B from after it.  Callers that assert exact cross-counter
    /// totals (tests, benches, the oracle) take the snapshot after joining
    /// the recording threads, which makes it exact — see the module-level
    /// atomic ordering policy.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut per_phase = BTreeMap::new();
        for phase in Phase::ALL {
            per_phase.insert(phase.name().to_string(), self.cells(phase).snapshot());
        }
        MetricsSnapshot {
            per_phase,
            relation_scan_counts: self.inner.relation_scan_counts.lock().clone(),
            structure_sizes: self.inner.structure_sizes.lock().clone(),
        }
    }

    /// Resets every counter to zero.
    ///
    /// Intended for quiescent handles (between bench iterations, between
    /// oracle runs).  Resetting while recorders are live zeroes each
    /// counter atomically but races with in-flight increments — some may
    /// land before the reset, some after.
    pub fn reset(&self) {
        for phase in Phase::ALL {
            let c = self.cells(phase);
            c.relation_scans.store(0, Ordering::Relaxed);
            c.tuples_read.store(0, Ordering::Relaxed);
            c.pages_read.store(0, Ordering::Relaxed);
            c.index_builds.store(0, Ordering::Relaxed);
            c.index_probes.store(0, Ordering::Relaxed);
            c.intermediate_tuples.store(0, Ordering::Relaxed);
            c.comparisons.store(0, Ordering::Relaxed);
            c.dereferences.store(0, Ordering::Relaxed);
        }
        self.inner.relation_scan_counts.lock().clear();
        self.inner.structure_sizes.lock().clear();
    }
}

/// A point-in-time copy of all metrics, serializable for reports.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counters per phase, keyed by phase name.
    pub per_phase: BTreeMap<String, Counters>,
    /// Number of scans per database relation.
    pub relation_scan_counts: BTreeMap<String, u64>,
    /// Final sizes of named intermediate structures.
    pub structure_sizes: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// Sum of the counters over all phases.
    pub fn total(&self) -> Counters {
        self.per_phase
            .values()
            .fold(Counters::default(), |acc, c| acc.add(c))
    }

    /// Counters for one phase.
    pub fn phase(&self, phase: Phase) -> Counters {
        self.per_phase
            .get(phase.name())
            .copied()
            .unwrap_or_default()
    }

    /// Number of scans recorded against a relation.
    pub fn scans_of(&self, relation: &str) -> u64 {
        self.relation_scan_counts
            .get(relation)
            .copied()
            .unwrap_or(0)
    }

    /// The maximum number of scans any single relation received — the
    /// paper's Strategy 1 claim is that this is 1.
    pub fn max_scans_per_relation(&self) -> u64 {
        self.relation_scan_counts
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Size of a named intermediate structure (0 if not recorded).
    pub fn structure_size(&self, name: &str) -> u64 {
        self.structure_sizes.get(name).copied().unwrap_or(0)
    }

    /// Sum of all recorded intermediate structure sizes.
    pub fn total_structure_size(&self) -> u64 {
        self.structure_sizes.values().sum()
    }

    /// Renders a compact multi-line report (used by examples and benches).
    /// Streams every line into one output `String` — no intermediate
    /// per-line allocations.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let total = self.total();
        let _ = writeln!(
            out,
            "scans={} tuples_read={} pages_read={} index_builds={} index_probes={} intermediate={} comparisons={} derefs={}",
            total.relation_scans,
            total.tuples_read,
            total.pages_read,
            total.index_builds,
            total.index_probes,
            total.intermediate_tuples,
            total.comparisons,
            total.dereferences,
        );
        for phase in Phase::ALL {
            let c = self.phase(phase);
            if !c.is_zero() {
                let _ = writeln!(
                    out,
                    "  [{}] scans={} tuples={} pages={} index_probes={} intermediate={} comparisons={}",
                    phase.name(),
                    c.relation_scans,
                    c.tuples_read,
                    c.pages_read,
                    c.index_probes,
                    c.intermediate_tuples,
                    c.comparisons
                );
            }
        }
        if !self.relation_scan_counts.is_empty() {
            out.push_str("  scans per relation: ");
            for (index, (k, v)) in self.relation_scan_counts.iter().enumerate() {
                if index > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{k}={v}");
            }
            out.push('\n');
        }
        if !self.structure_sizes.is_empty() {
            out.push_str("  intermediate structures: ");
            for (index, (k, v)) in self.structure_sizes.iter().enumerate() {
                if index > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{k}={v}");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_phase() {
        let m = Metrics::new();
        m.record_scan(Phase::Collection, "employees", 100, 4);
        m.record_scan(Phase::Collection, "papers", 50, 2);
        m.record_scan(Phase::Combination, "employees", 100, 4);
        m.record_intermediate(Phase::Collection, 30);
        m.record_comparisons(Phase::Combination, 500);
        m.record_dereferences(Phase::Construction, 7);
        m.record_index_build(Phase::Collection);
        m.record_index_probes(Phase::Collection, 12);
        m.record_tuple_reads(Phase::Construction, 3, 1);

        let s = m.snapshot();
        assert_eq!(s.phase(Phase::Collection).relation_scans, 2);
        assert_eq!(s.phase(Phase::Collection).tuples_read, 150);
        assert_eq!(s.phase(Phase::Combination).comparisons, 500);
        assert_eq!(s.phase(Phase::Construction).dereferences, 7);
        assert_eq!(s.total().relation_scans, 3);
        assert_eq!(s.total().tuples_read, 253);
        assert_eq!(s.scans_of("employees"), 2);
        assert_eq!(s.scans_of("papers"), 1);
        assert_eq!(s.scans_of("courses"), 0);
        assert_eq!(s.max_scans_per_relation(), 2);
    }

    #[test]
    fn structure_sizes_are_recorded_and_summed() {
        let m = Metrics::new();
        m.record_structure_size("sl_csoph", 10);
        m.record_structure_size("ij_c_t", 25);
        m.record_structure_size("sl_csoph", 12); // overwrite
        let s = m.snapshot();
        assert_eq!(s.structure_size("sl_csoph"), 12);
        assert_eq!(s.structure_size("ij_c_t"), 25);
        assert_eq!(s.structure_size("missing"), 0);
        assert_eq!(s.total_structure_size(), 37);
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = Metrics::new();
        m.record_scan(Phase::Collection, "r", 10, 1);
        m.record_structure_size("x", 5);
        m.reset();
        let s = m.snapshot();
        assert!(s.total().is_zero());
        assert!(s.relation_scan_counts.is_empty());
        assert!(s.structure_sizes.is_empty());
    }

    #[test]
    fn counters_arithmetic() {
        let a = Counters {
            relation_scans: 2,
            tuples_read: 10,
            ..Default::default()
        };
        let b = Counters {
            relation_scans: 1,
            tuples_read: 3,
            comparisons: 7,
            ..Default::default()
        };
        let sum = a.add(&b);
        assert_eq!(sum.relation_scans, 3);
        assert_eq!(sum.tuples_read, 13);
        assert_eq!(sum.comparisons, 7);
        let diff = sum.saturating_sub(&a);
        assert_eq!(diff, b);
        let under = b.saturating_sub(&sum);
        assert_eq!(under.relation_scans, 0);
    }

    #[test]
    fn clones_share_the_same_counters() {
        let m = Metrics::new();
        let m2 = m.clone();
        m2.record_comparisons(Phase::Other, 9);
        assert_eq!(m.snapshot().phase(Phase::Other).comparisons, 9);
    }

    #[test]
    fn render_mentions_phases_and_structures() {
        let m = Metrics::new();
        m.record_scan(Phase::Collection, "courses", 5, 1);
        m.record_structure_size("sl_csoph", 2);
        let text = m.snapshot().render();
        assert!(text.contains("[collection]"));
        assert!(
            text.contains("pages=1") && text.contains("index_probes=0"),
            "per-phase lines carry page and index-probe counts: {text}"
        );
        assert!(text.contains("courses=1"));
        assert!(text.contains("sl_csoph=2"));
    }

    #[test]
    fn metrics_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Metrics>();
    }
}
