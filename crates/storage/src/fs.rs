//! The file layer beneath the persistent backend.
//!
//! [`StorageFs`] is a tiny flat-namespace file abstraction: named byte
//! files with append, positional read/write, atomic whole-file replace,
//! and explicit durability points ([`StorageFs::sync`]). Two
//! implementations ship with the crate:
//!
//! - [`DiskFs`] maps files onto a directory via `std::fs`. This module is
//!   the **only** place in the workspace allowed to touch `std::fs` (a
//!   `repo_lints` gate enforces it), so every durability decision — the
//!   write-temp-then-rename commit point, when `fsync` actually happens —
//!   is auditable in one file.
//! - [`MemFs`] keeps files in memory and adds fault-injection hooks
//!   ([`MemFs::snapshot`] / [`MemFs::restore`] / [`MemFs::truncate`]) so
//!   crash-recovery tests can stop a "process" at an arbitrary WAL byte
//!   without spawning processes or touching the real disk.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

use pascalr_sync::{Arc, Mutex};

use crate::error::StorageError;

/// A flat namespace of named byte files with explicit durability points.
///
/// All methods take `&self`; implementations synchronize internally. File
/// names are backend-chosen identifiers (`meta.bin`, `wal.3.log`, …), not
/// user input, and never contain path separators.
pub trait StorageFs: Send + Sync + fmt::Debug {
    /// Read the entire file, or `Ok(None)` if it does not exist.
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError>;

    /// Read exactly `len` bytes at `offset`. Reading past the end of the
    /// file is corruption (the caller's directory said the bytes exist).
    fn read_at(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>, StorageError>;

    /// Overwrite the byte range at `offset`, extending the file
    /// (zero-filled) if it ends before `offset`. Creates the file if
    /// missing. Not durable until [`StorageFs::sync`].
    fn write_at(&self, name: &str, offset: u64, data: &[u8]) -> Result<(), StorageError>;

    /// Append bytes to the end of the file, creating it if missing.
    /// Not durable until [`StorageFs::sync`].
    fn append(&self, name: &str, data: &[u8]) -> Result<(), StorageError>;

    /// Atomically replace the file's contents and make them durable: after
    /// this returns, a crash observes either the old contents or the new,
    /// never a mixture. This is the commit point for checkpoints.
    fn write_atomic(&self, name: &str, data: &[u8]) -> Result<(), StorageError>;

    /// Current length of the file in bytes (0 if it does not exist).
    fn len(&self, name: &str) -> Result<u64, StorageError>;

    /// Force previously written bytes of this file to durable storage.
    fn sync(&self, name: &str) -> Result<(), StorageError>;

    /// Remove the file if it exists.
    fn remove(&self, name: &str) -> Result<(), StorageError>;

    /// Names of all existing files, sorted.
    fn list(&self) -> Result<Vec<String>, StorageError>;
}

/// [`StorageFs`] over a real directory.
///
/// Files are opened per call — the backend above batches I/O through its
/// buffer pool and WAL appends, so the simplicity is worth more than a
/// descriptor cache. [`StorageFs::write_atomic`] writes `<name>.tmp`,
/// fsyncs it, renames over `<name>`, then fsyncs the directory so the
/// rename itself is durable.
#[derive(Debug)]
pub struct DiskFs {
    root: PathBuf,
}

impl DiskFs {
    /// Open (creating if needed) the directory that holds the database
    /// files.
    pub fn open(root: impl Into<PathBuf>) -> Result<DiskFs, StorageError> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| StorageError::io(&format!("create {}", root.display()), &e))?;
        Ok(DiskFs { root })
    }

    /// The directory the database files live in.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn sync_dir(&self) -> Result<(), StorageError> {
        // Durability of creates/renames requires fsyncing the directory
        // entry, not just the file contents.
        let dir = std::fs::File::open(&self.root)
            .map_err(|e| StorageError::io(&format!("open dir {}", self.root.display()), &e))?;
        dir.sync_all()
            .map_err(|e| StorageError::io(&format!("fsync dir {}", self.root.display()), &e))
    }
}

impl StorageFs for DiskFs {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError> {
        match std::fs::read(self.path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StorageError::io(&format!("read {name}"), &e)),
        }
    }

    fn read_at(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>, StorageError> {
        let mut file = std::fs::File::open(self.path(name))
            .map_err(|e| StorageError::io(&format!("open {name}"), &e))?;
        file.seek(SeekFrom::Start(offset))
            .map_err(|e| StorageError::io(&format!("seek {name}@{offset}"), &e))?;
        let mut buf = vec![0u8; len];
        file.read_exact(&mut buf).map_err(|e| {
            StorageError::corrupt(format!(
                "short read of {len} byte(s) at {name}@{offset}: {e}"
            ))
        })?;
        Ok(buf)
    }

    fn write_at(&self, name: &str, offset: u64, data: &[u8]) -> Result<(), StorageError> {
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(self.path(name))
            .map_err(|e| StorageError::io(&format!("open {name} for write"), &e))?;
        file.seek(SeekFrom::Start(offset))
            .map_err(|e| StorageError::io(&format!("seek {name}@{offset}"), &e))?;
        file.write_all(data)
            .map_err(|e| StorageError::io(&format!("write {name}@{offset}"), &e))
    }

    fn append(&self, name: &str, data: &[u8]) -> Result<(), StorageError> {
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(self.path(name))
            .map_err(|e| StorageError::io(&format!("open {name} for append"), &e))?;
        file.write_all(data)
            .map_err(|e| StorageError::io(&format!("append {name}"), &e))
    }

    fn write_atomic(&self, name: &str, data: &[u8]) -> Result<(), StorageError> {
        let tmp = self.path(&format!("{name}.tmp"));
        let mut file = std::fs::File::create(&tmp)
            .map_err(|e| StorageError::io(&format!("create {name}.tmp"), &e))?;
        file.write_all(data)
            .map_err(|e| StorageError::io(&format!("write {name}.tmp"), &e))?;
        file.sync_all()
            .map_err(|e| StorageError::io(&format!("fsync {name}.tmp"), &e))?;
        drop(file);
        std::fs::rename(&tmp, self.path(name))
            .map_err(|e| StorageError::io(&format!("rename {name}.tmp -> {name}"), &e))?;
        self.sync_dir()
    }

    fn len(&self, name: &str) -> Result<u64, StorageError> {
        match std::fs::metadata(self.path(name)) {
            Ok(meta) => Ok(meta.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(StorageError::io(&format!("stat {name}"), &e)),
        }
    }

    fn sync(&self, name: &str) -> Result<(), StorageError> {
        match std::fs::File::open(self.path(name)) {
            Ok(file) => file
                .sync_all()
                .map_err(|e| StorageError::io(&format!("fsync {name}"), &e)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StorageError::io(&format!("open {name} for fsync"), &e)),
        }
    }

    fn remove(&self, name: &str) -> Result<(), StorageError> {
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StorageError::io(&format!("remove {name}"), &e)),
        }
    }

    fn list(&self) -> Result<Vec<String>, StorageError> {
        let entries = std::fs::read_dir(&self.root)
            .map_err(|e| StorageError::io(&format!("list {}", self.root.display()), &e))?;
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry
                .map_err(|e| StorageError::io(&format!("list {}", self.root.display()), &e))?;
            if let Some(name) = entry.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        names.sort();
        Ok(names)
    }
}

/// In-memory [`StorageFs`] with fault-injection hooks for crash tests.
///
/// Cloning the handle shares the underlying files (like two descriptors on
/// one filesystem). [`MemFs::snapshot`] captures the current "on-disk"
/// state and [`MemFs::restore`] rewinds to it, which models a crash that
/// loses everything written since; [`MemFs::truncate`] cuts a file to a
/// prefix, which models a torn append.
#[derive(Debug, Clone, Default)]
pub struct MemFs {
    files: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
}

impl MemFs {
    /// Create an empty in-memory filesystem.
    pub fn new() -> MemFs {
        MemFs::default()
    }

    /// Capture the full current state for a later [`MemFs::restore`].
    pub fn snapshot(&self) -> BTreeMap<String, Vec<u8>> {
        self.files.lock().clone()
    }

    /// Replace the state with a snapshot, discarding all writes since.
    pub fn restore(&self, snapshot: BTreeMap<String, Vec<u8>>) {
        *self.files.lock() = snapshot;
    }

    /// Cut `name` down to its first `len` bytes (no-op if already
    /// shorter or missing) — a torn tail on a partially flushed append.
    pub fn truncate(&self, name: &str, len: usize) {
        if let Some(data) = self.files.lock().get_mut(name) {
            data.truncate(len);
        }
    }

    /// Flip byte `offset` of `name` (no-op when out of range) — models a
    /// corrupted sector under an already-written record.
    pub fn corrupt_byte(&self, name: &str, offset: usize) {
        if let Some(byte) = self
            .files
            .lock()
            .get_mut(name)
            .and_then(|data| data.get_mut(offset))
        {
            *byte ^= 0xff;
        }
    }
}

impl StorageFs for MemFs {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError> {
        Ok(self.files.lock().get(name).cloned())
    }

    fn read_at(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>, StorageError> {
        let files = self.files.lock();
        let data = files
            .get(name)
            .ok_or_else(|| StorageError::corrupt(format!("read_at on missing file {name}")))?;
        let start = usize::try_from(offset)
            .map_err(|_| StorageError::corrupt(format!("offset {offset} out of range")))?;
        let end = start.checked_add(len).filter(|&end| end <= data.len());
        match end {
            Some(end) => Ok(data[start..end].to_vec()),
            None => Err(StorageError::corrupt(format!(
                "short read of {len} byte(s) at {name}@{offset} (file is {} byte(s))",
                data.len()
            ))),
        }
    }

    fn write_at(&self, name: &str, offset: u64, data: &[u8]) -> Result<(), StorageError> {
        let mut files = self.files.lock();
        let file = files.entry(name.to_string()).or_default();
        let start = usize::try_from(offset)
            .map_err(|_| StorageError::corrupt(format!("offset {offset} out of range")))?;
        let end = start.saturating_add(data.len());
        if file.len() < end {
            file.resize(end, 0);
        }
        file[start..end].copy_from_slice(data);
        Ok(())
    }

    fn append(&self, name: &str, data: &[u8]) -> Result<(), StorageError> {
        self.files
            .lock()
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(data);
        Ok(())
    }

    fn write_atomic(&self, name: &str, data: &[u8]) -> Result<(), StorageError> {
        self.files.lock().insert(name.to_string(), data.to_vec());
        Ok(())
    }

    fn len(&self, name: &str) -> Result<u64, StorageError> {
        Ok(self.files.lock().get(name).map_or(0, |d| d.len() as u64))
    }

    fn sync(&self, _name: &str) -> Result<(), StorageError> {
        Ok(())
    }

    fn remove(&self, name: &str) -> Result<(), StorageError> {
        self.files.lock().remove(name);
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>, StorageError> {
        Ok(self.files.lock().keys().cloned().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(fs: &dyn StorageFs) {
        assert_eq!(fs.read("a").unwrap(), None);
        assert_eq!(fs.len("a").unwrap(), 0);
        fs.append("a", b"hel").unwrap();
        fs.append("a", b"lo").unwrap();
        assert_eq!(fs.read("a").unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(fs.len("a").unwrap(), 5);
        assert_eq!(fs.read_at("a", 1, 3).unwrap(), b"ell");
        assert!(fs.read_at("a", 3, 3).is_err(), "read past EOF is an error");
        fs.write_at("a", 4, b"p!").unwrap();
        assert_eq!(fs.read("a").unwrap().as_deref(), Some(&b"hellp!"[..]));
        fs.write_at("b", 2, b"xy").unwrap();
        assert_eq!(fs.read("b").unwrap().as_deref(), Some(&b"\0\0xy"[..]));
        fs.write_atomic("a", b"replaced").unwrap();
        assert_eq!(fs.read("a").unwrap().as_deref(), Some(&b"replaced"[..]));
        fs.sync("a").unwrap();
        let names = fs.list().unwrap();
        assert!(names.contains(&"a".to_string()) && names.contains(&"b".to_string()));
        fs.remove("b").unwrap();
        fs.remove("b").unwrap(); // idempotent
        assert_eq!(fs.read("b").unwrap(), None);
    }

    #[test]
    fn mem_fs_contract() {
        exercise(&MemFs::new());
    }

    #[test]
    fn disk_fs_contract() {
        let dir = std::env::temp_dir().join(format!("pascalr-diskfs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fs = DiskFs::open(&dir).unwrap();
        exercise(&fs);
        // write_atomic must not leave the temp file behind.
        assert!(!fs.list().unwrap().iter().any(|n| n.ends_with(".tmp")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_fs_fault_injection() {
        let fs = MemFs::new();
        fs.append("wal", b"0123456789").unwrap();
        let snap = fs.snapshot();
        fs.append("wal", b"abcdef").unwrap();
        fs.truncate("wal", 12);
        assert_eq!(
            fs.read("wal").unwrap().as_deref(),
            Some(&b"0123456789ab"[..])
        );
        fs.corrupt_byte("wal", 0);
        assert_ne!(fs.read("wal").unwrap().unwrap()[0], b'0');
        fs.restore(snap);
        assert_eq!(fs.read("wal").unwrap().as_deref(), Some(&b"0123456789"[..]));
    }

    #[test]
    fn mem_fs_clones_share_state() {
        let a = MemFs::new();
        let b = a.clone();
        a.append("f", b"x").unwrap();
        assert_eq!(b.read("f").unwrap().as_deref(), Some(&b"x"[..]));
    }
}
