//! Minimal hand-rolled binary codec used by the persistent backend.
//!
//! The workspace's vendored `serde` derives expand to nothing, so every
//! persisted structure is encoded by hand through these primitives. The
//! format is little-endian, length-prefixed, and deliberately boring: a
//! reopened database must decode bytes written by an older process, so
//! there is no implicit schema — every reader states exactly what it
//! expects and fails with [`StorageError::Corrupt`] otherwise.

use crate::error::StorageError;

/// Byte-buffer encoder. All integers are little-endian.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Create an empty encoder.
    pub fn new() -> Enc {
        Enc { buf: Vec::new() }
    }

    /// Consume the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `bool` as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Append a `usize` as a `u64` (lossless on all supported targets).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Append an `Option<i64>` as a presence byte plus the value.
    pub fn opt_i64(&mut self, v: Option<i64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.i64(x);
            }
            None => self.bool(false),
        }
    }

    /// Append an `Option<&str>` as a presence byte plus the string.
    pub fn opt_str(&mut self, v: Option<&str>) {
        match v {
            Some(s) => {
                self.bool(true);
                self.str(s);
            }
            None => self.bool(false),
        }
    }
}

/// Byte-buffer decoder over a borrowed slice. Every read is bounds-checked
/// and returns [`StorageError::Corrupt`] on underflow or malformed data.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Start decoding `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole input was consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Require that the whole input was consumed (trailing garbage is a
    /// corruption signal for fixed-layout structures).
    pub fn finish(&self) -> Result<(), StorageError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(StorageError::corrupt(format!(
                "{} trailing byte(s) after decoded value",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        if self.remaining() < n {
            return Err(StorageError::corrupt(format!(
                "short read: wanted {n} byte(s), {} left",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, StorageError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, StorageError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StorageError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, StorageError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a `bool` byte; anything other than 0/1 is corruption.
    pub fn bool(&mut self) -> Result<bool, StorageError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StorageError::corrupt(format!(
                "invalid bool byte {other:#04x}"
            ))),
        }
    }

    /// Read a `usize` written by [`Enc::usize`].
    pub fn usize(&mut self) -> Result<usize, StorageError> {
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| StorageError::corrupt(format!("usize value {v} out of range")))
    }

    /// Read a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], StorageError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(StorageError::corrupt(format!(
                "length prefix {n} exceeds {} remaining byte(s)",
                self.remaining()
            )));
        }
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, StorageError> {
        let b = self.bytes()?;
        std::str::from_utf8(b).map_err(|e| StorageError::corrupt(format!("invalid UTF-8: {e}")))
    }

    /// Read an `Option<i64>` written by [`Enc::opt_i64`].
    pub fn opt_i64(&mut self) -> Result<Option<i64>, StorageError> {
        Ok(if self.bool()? {
            Some(self.i64()?)
        } else {
            None
        })
    }

    /// Read an `Option<String>` written by [`Enc::opt_str`].
    pub fn opt_string(&mut self) -> Result<Option<String>, StorageError> {
        Ok(if self.bool()? {
            Some(self.str()?.to_string())
        } else {
            None
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut e = Enc::new();
        e.u8(7);
        e.u16(65535);
        e.u32(123_456);
        e.u64(u64::MAX);
        e.i64(-42);
        e.bool(true);
        e.usize(99);
        e.bytes(b"raw");
        e.str("héllo");
        e.opt_i64(Some(-1));
        e.opt_i64(None);
        e.opt_str(Some("x"));
        e.opt_str(None);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().ok(), Some(7));
        assert_eq!(d.u16().ok(), Some(65535));
        assert_eq!(d.u32().ok(), Some(123_456));
        assert_eq!(d.u64().ok(), Some(u64::MAX));
        assert_eq!(d.i64().ok(), Some(-42));
        assert_eq!(d.bool().ok(), Some(true));
        assert_eq!(d.usize().ok(), Some(99));
        assert_eq!(d.bytes().ok(), Some(&b"raw"[..]));
        assert_eq!(d.str().ok(), Some("héllo"));
        assert_eq!(d.opt_i64().ok(), Some(Some(-1)));
        assert_eq!(d.opt_i64().ok(), Some(None));
        assert_eq!(d.opt_string().ok(), Some(Some("x".to_string())));
        assert_eq!(d.opt_string().ok(), Some(None));
        assert!(d.finish().is_ok());
    }

    #[test]
    fn short_reads_are_corruption_not_panics() {
        let mut d = Dec::new(&[1, 2]);
        assert!(d.u64().is_err());
        // A huge length prefix must not cause a huge allocation or panic.
        let mut e = Enc::new();
        e.u64(u64::MAX);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(d.bytes().is_err());
    }

    #[test]
    fn invalid_bool_and_utf8_are_corruption() {
        let mut d = Dec::new(&[9]);
        assert!(matches!(d.bool(), Err(StorageError::Corrupt { .. })));
        let mut e = Enc::new();
        e.bytes(&[0xff, 0xfe]);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(matches!(d.str(), Err(StorageError::Corrupt { .. })));
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let mut d = Dec::new(&[1, 2, 3]);
        let _ = d.u8();
        assert!(d.finish().is_err());
    }
}
