//! Shared durability counters for the persistent backend.
//!
//! [`StorageCounters`] bundles every counter the storage engine ticks —
//! buffer-pool traffic, WAL volume, recovery replays, checkpoints — as
//! `Arc<Counter>` handles. The engine's `DbObs` registers the same
//! handles in its metrics [`Registry`](pascalr_obs::Registry), so the
//! numbers surface through `render_prometheus()` / `metrics_json()`
//! without the storage crate knowing the registry exists.

use pascalr_obs::Counter;
use pascalr_sync::Arc;

use crate::buffer::PoolCounters;

/// Every counter the persistent backend ticks, shareable with a metrics
/// registry.
#[derive(Debug, Clone)]
pub struct StorageCounters {
    /// Buffer-pool hit/miss/eviction counters.
    pub pool: PoolCounters,
    /// WAL records appended.
    pub wal_appends: Arc<Counter>,
    /// WAL bytes appended (frame headers included).
    pub wal_bytes: Arc<Counter>,
    /// WAL fsyncs issued.
    pub wal_fsyncs: Arc<Counter>,
    /// WAL records replayed during redo recovery on open.
    pub recovery_replays: Arc<Counter>,
    /// Checkpoints written.
    pub checkpoints: Arc<Counter>,
}

impl StorageCounters {
    /// Counters not attached to any registry (tests, standalone use).
    pub fn detached() -> StorageCounters {
        StorageCounters {
            pool: PoolCounters::detached(),
            wal_appends: Arc::new(Counter::new()),
            wal_bytes: Arc::new(Counter::new()),
            wal_fsyncs: Arc::new(Counter::new()),
            recovery_replays: Arc::new(Counter::new()),
            checkpoints: Arc::new(Counter::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_counters_start_at_zero_and_tick() {
        let c = StorageCounters::detached();
        assert_eq!(c.wal_appends.get(), 0);
        c.wal_appends.inc();
        c.pool.hits.add(3);
        assert_eq!(c.wal_appends.get(), 1);
        assert_eq!(c.pool.hits.get(), 3);
    }
}
