//! Write-ahead log: CRC-framed appends with torn-tail-tolerant replay.
//!
//! Each record on disk is `[len: u32][crc32: u32][payload]`. Appends go
//! through [`WalWriter`], whose [`FsyncPolicy`] decides when the log is
//! forced to durable storage — the commit protocol is *WAL before
//! visible*: the engine appends (and, policy permitting, fsyncs) the
//! record before publishing the catalog version it describes, so every
//! acknowledged mutation is either on disk or was never observable.
//!
//! [`replay`] walks the log from the start and stops cleanly at the first
//! frame that is short, oversized, or fails its checksum. A damaged
//! *tail* is the expected signature of a crash mid-append and is simply
//! discarded (`ReplayOutcome::torn_tail`); redo recovery applies only the
//! fully framed prefix.

use pascalr_sync::{Arc, Mutex};

use crate::counters::StorageCounters;
use crate::error::StorageError;
use crate::fs::StorageFs;

/// Bytes of the per-record frame header (`len` + `crc32`).
pub const WAL_FRAME_HEADER: usize = 8;

/// Upper bound on a single WAL payload; frames claiming more are treated
/// as a torn tail, bounding what a corrupted length prefix can make the
/// replayer allocate.
pub const MAX_WAL_PAYLOAD: usize = 1 << 28;

/// When the WAL forces appended records to durable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every logged mutation (the default): an acknowledged
    /// mutation survives any later crash.
    EveryCommit,
    /// Fsync once per `n` appends: bounded data loss (at most the last
    /// `n - 1` acknowledged mutations) for much higher ingest throughput.
    Batched(u64),
    /// Never fsync from the WAL path; durability happens only at
    /// checkpoints and file-system discretion. For tests and bulk loads.
    Never,
}

/// CRC-32 (ISO-HDLC polynomial, the `zlib` one), bit-reflected,
/// hand-rolled because the workspace vendors no checksum crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Frame one payload for appending to the log.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(WAL_FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// What [`replay`] recovered from a log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// The fully framed payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of the log consumed by those records.
    pub bytes_consumed: usize,
    /// Whether trailing bytes were discarded (crash mid-append).
    pub torn_tail: bool,
}

/// Decode every complete frame from `log`, stopping at the first torn,
/// short, oversized, or checksum-failing frame.
pub fn replay(log: &[u8]) -> ReplayOutcome {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while log.len() - pos >= WAL_FRAME_HEADER {
        let len = u32::from_le_bytes([log[pos], log[pos + 1], log[pos + 2], log[pos + 3]]) as usize;
        let crc = u32::from_le_bytes([log[pos + 4], log[pos + 5], log[pos + 6], log[pos + 7]]);
        let start = pos + WAL_FRAME_HEADER;
        if len > MAX_WAL_PAYLOAD || len > log.len() - start {
            break;
        }
        let payload = &log[start..start + len];
        if crc32(payload) != crc {
            break;
        }
        records.push(payload.to_vec());
        pos = start + len;
    }
    ReplayOutcome {
        records,
        bytes_consumed: pos,
        torn_tail: pos != log.len(),
    }
}

#[derive(Debug)]
struct WalState {
    /// Appends since the last fsync (for [`FsyncPolicy::Batched`]).
    unsynced: u64,
}

/// Appender for one WAL file. Clones share position state, so one writer
/// exists per backend; rotation (checkpointing) swaps the file name.
#[derive(Debug)]
pub struct WalWriter {
    fs: Arc<dyn StorageFs>,
    file: Mutex<String>,
    policy: FsyncPolicy,
    state: Mutex<WalState>,
    counters: StorageCounters,
}

impl WalWriter {
    /// A writer appending to `file` on `fs` under `policy`, ticking
    /// `counters` for every append/byte/fsync.
    pub fn new(
        fs: Arc<dyn StorageFs>,
        file: String,
        policy: FsyncPolicy,
        counters: StorageCounters,
    ) -> WalWriter {
        WalWriter {
            fs,
            file: Mutex::new(file),
            policy,
            state: Mutex::new(WalState { unsynced: 0 }),
            counters,
        }
    }

    /// The file currently being appended to.
    pub fn file(&self) -> String {
        self.file.lock().clone()
    }

    /// The counters this writer ticks.
    pub fn counters(&self) -> &StorageCounters {
        &self.counters
    }

    /// Point the writer at a fresh (already created) log file — the
    /// checkpoint rotation step.
    pub fn rotate_to(&self, file: String) {
        *self.file.lock() = file;
        self.state.lock().unsynced = 0;
    }

    /// Append one framed payload, fsyncing per the policy. Returns after
    /// the record is durable to the degree the policy promises.
    pub fn append(&self, payload: &[u8]) -> Result<(), StorageError> {
        let framed = frame(payload);
        let file = self.file();
        self.fs.append(&file, &framed)?;
        self.counters.wal_appends.inc();
        self.counters.wal_bytes.add(framed.len() as u64);
        let mut state = self.state.lock();
        state.unsynced += 1;
        let sync_now = match self.policy {
            FsyncPolicy::EveryCommit => true,
            FsyncPolicy::Batched(n) => state.unsynced >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if sync_now {
            self.fs.sync(&file)?;
            self.counters.wal_fsyncs.inc();
            state.unsynced = 0;
        }
        Ok(())
    }

    /// Force everything appended so far to durable storage regardless of
    /// policy (used at checkpoint boundaries and explicit `sync()`).
    pub fn sync(&self) -> Result<(), StorageError> {
        let file = self.file();
        let mut state = self.state.lock();
        if state.unsynced > 0 {
            self.fs.sync(&file)?;
            self.counters.wal_fsyncs.inc();
            state.unsynced = 0;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::MemFs;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard zlib CRC-32 test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_a686);
    }

    #[test]
    fn frame_and_replay_round_trip() {
        let mut log = Vec::new();
        let payloads: Vec<&[u8]> = vec![b"one", b"", b"three"];
        for p in &payloads {
            log.extend_from_slice(&frame(p));
        }
        let out = replay(&log);
        assert_eq!(
            out.records,
            payloads.iter().map(|p| p.to_vec()).collect::<Vec<_>>()
        );
        assert!(!out.torn_tail);
        assert_eq!(out.bytes_consumed, log.len());
    }

    #[test]
    fn torn_tail_is_discarded_silently() {
        let mut log = frame(b"committed");
        let full = log.len();
        log.extend_from_slice(&frame(b"torn")[..5]); // crash mid-append
        let out = replay(&log);
        assert_eq!(out.records, vec![b"committed".to_vec()]);
        assert!(out.torn_tail);
        assert_eq!(out.bytes_consumed, full);
    }

    #[test]
    fn checksum_failure_stops_replay() {
        let mut log = frame(b"good");
        let mut bad = frame(b"flipped");
        let at = bad.len() - 1;
        bad[at] ^= 0xff;
        log.extend_from_slice(&bad);
        log.extend_from_slice(&frame(b"after")); // unreachable past damage
        let out = replay(&log);
        assert_eq!(out.records, vec![b"good".to_vec()]);
        assert!(out.torn_tail);
    }

    #[test]
    fn absurd_length_prefix_does_not_allocate() {
        let mut log = frame(b"ok");
        log.extend_from_slice(&u32::MAX.to_le_bytes());
        log.extend_from_slice(&[0u8; 4]);
        let out = replay(&log);
        assert_eq!(out.records.len(), 1);
        assert!(out.torn_tail);
    }

    #[test]
    fn writer_policies_control_fsyncs() {
        let fs = Arc::new(MemFs::new());
        let every = WalWriter::new(
            fs.clone() as Arc<dyn StorageFs>,
            "w1".to_string(),
            FsyncPolicy::EveryCommit,
            StorageCounters::detached(),
        );
        every.append(b"a").unwrap();
        every.append(b"b").unwrap();
        assert_eq!(every.counters().wal_fsyncs.get(), 2);
        assert_eq!(every.counters().wal_appends.get(), 2);

        let batched = WalWriter::new(
            fs.clone() as Arc<dyn StorageFs>,
            "w2".to_string(),
            FsyncPolicy::Batched(3),
            StorageCounters::detached(),
        );
        for _ in 0..7 {
            batched.append(b"x").unwrap();
        }
        assert_eq!(
            batched.counters().wal_fsyncs.get(),
            2,
            "7 appends at batch 3"
        );
        batched.sync().unwrap();
        assert_eq!(batched.counters().wal_fsyncs.get(), 3);
        batched.sync().unwrap();
        assert_eq!(batched.counters().wal_fsyncs.get(), 3, "clean sync is free");

        let raw = fs.read("w1").unwrap().unwrap();
        let out = replay(&raw);
        assert_eq!(out.records, vec![b"a".to_vec(), b"b".to_vec()]);
    }

    #[test]
    fn rotation_starts_a_fresh_log() {
        let fs = Arc::new(MemFs::new());
        let w = WalWriter::new(
            fs.clone() as Arc<dyn StorageFs>,
            "wal.0.log".to_string(),
            FsyncPolicy::Never,
            StorageCounters::detached(),
        );
        w.append(b"old").unwrap();
        fs.write_atomic("wal.1.log", b"").unwrap();
        w.rotate_to("wal.1.log".to_string());
        w.append(b"new").unwrap();
        let out = replay(&fs.read("wal.1.log").unwrap().unwrap());
        assert_eq!(out.records, vec![b"new".to_vec()]);
    }
}
