//! The [`StorageBackend`] abstraction and its two implementations.
//!
//! A backend owns the durability of the engine: the catalog hands it
//! opaque byte payloads (WAL records on every logged mutation, the full
//! record set at checkpoints) and asks for them back on open. Query
//! execution never blocks on a backend — published catalog snapshots pin
//! immutable in-memory state, and the backend's job is to reconstruct
//! that state after a restart.
//!
//! - [`MemoryBackend`] is the default: no files, no logging, exactly the
//!   pre-durability engine.
//! - [`SlottedHeapBackend`] is the real one: slotted heap pages behind a
//!   fixed-capacity [`BufferPool`], a CRC-framed WAL with redo recovery,
//!   and generation-numbered checkpoint files committed by an atomic
//!   `meta.bin` swap.
//!
//! ## On-disk layout (`SlottedHeapBackend`)
//!
//! | file | contents |
//! |------|----------|
//! | `meta.bin` | commit point: magic, generation, relation directory, catalog metadata, CRC |
//! | `data_<gen>.pages` | slotted heap pages for every relation, packed at checkpoint |
//! | `wal_<gen>.log` | redo log of mutations since checkpoint `<gen>` |
//!
//! A checkpoint writes the *next* generation's data and (empty) WAL
//! files, fsyncs them, then atomically replaces `meta.bin`. A crash
//! anywhere before that replace leaves the previous generation fully
//! intact; a crash after it leaves the new one — there is no in-between.

use std::collections::BTreeMap;
use std::fmt;

use pascalr_sync::{Arc, Mutex};

use crate::buffer::BufferPool;
use crate::codec::{Dec, Enc};
use crate::counters::StorageCounters;
use crate::error::StorageError;
use crate::fs::StorageFs;
use crate::slotted::{pack_records, SlottedPage};
use crate::wal::{replay, FsyncPolicy, WalWriter};

/// Magic prefix of `meta.bin` (`PRHEAP` + format version).
const META_MAGIC: &[u8; 8] = b"PRHEAP01";

/// Everything a backend recovered on open: the checkpointed state plus
/// the redo log to replay on top of it.
#[derive(Debug, Clone)]
pub struct CheckpointData {
    /// Opaque catalog metadata written by the last checkpoint.
    pub meta: Vec<u8>,
    /// Per-relation record payloads, in checkpoint order.
    pub relations: Vec<(String, Vec<Vec<u8>>)>,
    /// WAL payloads appended after the checkpoint, in append order.
    pub wal_records: Vec<Vec<u8>>,
    /// Whether a torn WAL tail was discarded during recovery.
    pub torn_tail: bool,
    /// The checkpoint generation that was opened.
    pub generation: u64,
}

/// Where and how the engine's tuples survive a restart.
///
/// Payloads are opaque to the backend: the catalog's codec decides what a
/// WAL record or a relation record contains. The contract is ordering —
/// [`StorageBackend::log`] is called *before* the mutation it describes
/// becomes visible to readers, so every recovered log is a redo log.
pub trait StorageBackend: Send + Sync + fmt::Debug {
    /// Whether this backend survives a process restart.
    fn is_persistent(&self) -> bool;

    /// Append one redo record, durable to the degree the backend's fsync
    /// policy promises. Called before the mutation is published.
    fn log(&self, payload: &[u8]) -> Result<(), StorageError>;

    /// Force all acknowledged-but-buffered log records to durable
    /// storage, regardless of fsync policy.
    fn sync(&self) -> Result<(), StorageError>;

    /// Write a full checkpoint: `meta` (opaque catalog metadata) plus
    /// every relation's record payloads. On success the WAL is rotated
    /// empty — recovery starts from this state.
    fn checkpoint(
        &self,
        meta: &[u8],
        relations: &[(String, Vec<Vec<u8>>)],
    ) -> Result<(), StorageError>;

    /// Recover the last checkpoint and the redo records logged after it,
    /// or `Ok(None)` when no checkpoint exists (fresh database). Callers
    /// must write an initial checkpoint before the first [`log`] call.
    ///
    /// [`log`]: StorageBackend::log
    fn open_checkpoint(&self) -> Result<Option<CheckpointData>, StorageError>;

    /// Real page count of `relation`'s heap extent as of the last
    /// checkpoint, when this backend materializes pages.
    fn page_count(&self, relation: &str) -> Option<u64>;

    /// Measured blocking factor (records per page) of the last
    /// checkpoint, when this backend materializes pages.
    fn tuples_per_page(&self) -> Option<u64>;
}

/// The default backend: everything lives in process memory and vanishes
/// with it. All durability hooks are no-ops.
#[derive(Debug, Default, Clone, Copy)]
pub struct MemoryBackend;

impl StorageBackend for MemoryBackend {
    fn is_persistent(&self) -> bool {
        false
    }

    fn log(&self, _payload: &[u8]) -> Result<(), StorageError> {
        Ok(())
    }

    fn sync(&self) -> Result<(), StorageError> {
        Ok(())
    }

    fn checkpoint(
        &self,
        _meta: &[u8],
        _relations: &[(String, Vec<Vec<u8>>)],
    ) -> Result<(), StorageError> {
        Ok(())
    }

    fn open_checkpoint(&self) -> Result<Option<CheckpointData>, StorageError> {
        Ok(None)
    }

    fn page_count(&self, _relation: &str) -> Option<u64> {
        None
    }

    fn tuples_per_page(&self) -> Option<u64> {
        None
    }
}

/// One relation's extent in the checkpoint's heap file.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RelExtent {
    start_page: u64,
    pages: u64,
    records: u64,
}

#[derive(Debug, Default)]
struct HeapState {
    generation: u64,
    directory: BTreeMap<String, RelExtent>,
    total_pages: u64,
    total_records: u64,
}

/// Tuning knobs for [`SlottedHeapBackend`].
#[derive(Debug, Clone, Copy)]
pub struct HeapOptions {
    /// Buffer-pool capacity in frames.
    pub pool_pages: usize,
    /// WAL fsync policy.
    pub fsync: FsyncPolicy,
}

impl Default for HeapOptions {
    fn default() -> HeapOptions {
        HeapOptions {
            pool_pages: 64,
            fsync: FsyncPolicy::EveryCommit,
        }
    }
}

/// Slotted-heap persistent backend: pages through a buffer pool, WAL with
/// redo recovery, atomic checkpoint generations.
#[derive(Debug)]
pub struct SlottedHeapBackend {
    fs: Arc<dyn StorageFs>,
    pool: BufferPool,
    wal: WalWriter,
    state: Mutex<HeapState>,
    counters: StorageCounters,
}

impl SlottedHeapBackend {
    /// A backend over `fs` with the given tuning and shared counters.
    pub fn new(fs: Arc<dyn StorageFs>, options: HeapOptions, counters: StorageCounters) -> Self {
        let pool = BufferPool::new(options.pool_pages, counters.pool.clone());
        let wal = WalWriter::new(
            Arc::clone(&fs),
            wal_file(0),
            options.fsync,
            counters.clone(),
        );
        SlottedHeapBackend {
            fs,
            pool,
            wal,
            state: Mutex::new(HeapState::default()),
            counters,
        }
    }

    /// The counters this backend ticks.
    pub fn counters(&self) -> &StorageCounters {
        &self.counters
    }

    /// The buffer pool serving this backend's page I/O.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    fn encode_meta(state: &HeapState, meta: &[u8]) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(state.generation);
        e.u64(state.total_pages);
        e.u64(state.total_records);
        e.usize(state.directory.len());
        for (name, extent) in &state.directory {
            e.str(name);
            e.u64(extent.start_page);
            e.u64(extent.pages);
            e.u64(extent.records);
        }
        e.bytes(meta);
        let body = e.into_bytes();
        let mut out = Vec::with_capacity(META_MAGIC.len() + body.len() + 4);
        out.extend_from_slice(META_MAGIC);
        out.extend_from_slice(&body);
        out.extend_from_slice(&crate::wal::crc32(&body).to_le_bytes());
        out
    }

    fn decode_meta(raw: &[u8]) -> Result<(HeapState, Vec<u8>), StorageError> {
        if raw.len() < META_MAGIC.len() + 4 || &raw[..META_MAGIC.len()] != META_MAGIC {
            return Err(StorageError::corrupt("meta.bin has no valid magic"));
        }
        let body = &raw[META_MAGIC.len()..raw.len() - 4];
        let stored_crc = u32::from_le_bytes([
            raw[raw.len() - 4],
            raw[raw.len() - 3],
            raw[raw.len() - 2],
            raw[raw.len() - 1],
        ]);
        if crate::wal::crc32(body) != stored_crc {
            return Err(StorageError::corrupt("meta.bin checksum mismatch"));
        }
        let mut d = Dec::new(body);
        let generation = d.u64()?;
        let total_pages = d.u64()?;
        let total_records = d.u64()?;
        let n = d.usize()?;
        let mut directory = BTreeMap::new();
        for _ in 0..n {
            let name = d.str()?.to_string();
            let extent = RelExtent {
                start_page: d.u64()?,
                pages: d.u64()?,
                records: d.u64()?,
            };
            directory.insert(name, extent);
        }
        let meta = d.bytes()?.to_vec();
        d.finish()?;
        Ok((
            HeapState {
                generation,
                directory,
                total_pages,
                total_records,
            },
            meta,
        ))
    }
}

fn data_file(generation: u64) -> String {
    format!("data_{generation}.pages")
}

fn wal_file(generation: u64) -> String {
    format!("wal_{generation}.log")
}

impl StorageBackend for SlottedHeapBackend {
    fn is_persistent(&self) -> bool {
        true
    }

    fn log(&self, payload: &[u8]) -> Result<(), StorageError> {
        self.wal.append(payload)
    }

    fn sync(&self) -> Result<(), StorageError> {
        self.wal.sync()
    }

    fn checkpoint(
        &self,
        meta: &[u8],
        relations: &[(String, Vec<Vec<u8>>)],
    ) -> Result<(), StorageError> {
        let mut state = self.state.lock();
        let old_gen = state.generation;
        let next_gen = old_gen + 1;
        let data: Arc<str> = Arc::from(data_file(next_gen).as_str());

        let mut directory = BTreeMap::new();
        let mut next_page = 0u64;
        let mut total_records = 0u64;
        for (name, records) in relations {
            let pages = pack_records(records.iter().map(Vec::as_slice))?;
            for (i, page) in pages.iter().enumerate() {
                self.pool
                    .write_page(&*self.fs, &data, next_page + i as u64, page.as_bytes())?;
            }
            directory.insert(
                name.clone(),
                RelExtent {
                    start_page: next_page,
                    pages: pages.len() as u64,
                    records: records.len() as u64,
                },
            );
            next_page += pages.len() as u64;
            total_records += records.len() as u64;
        }
        self.pool.flush(&*self.fs)?;
        self.fs.sync(&data)?;
        // A fresh empty WAL for the new generation, durable before the
        // commit point names it.
        self.fs.write_atomic(&wal_file(next_gen), b"")?;

        let next_state = HeapState {
            generation: next_gen,
            directory,
            total_pages: next_page,
            total_records,
        };
        // Commit point: after this atomic replace, recovery sees the new
        // generation; before it, the old one — never a mixture.
        self.fs
            .write_atomic("meta.bin", &Self::encode_meta(&next_state, meta))?;

        *state = next_state;
        self.wal.rotate_to(wal_file(next_gen));
        self.counters.checkpoints.inc();

        // Best-effort cleanup of the superseded generation.
        let _ = self.fs.remove(&data_file(old_gen));
        let _ = self.fs.remove(&wal_file(old_gen));
        self.pool.discard_file(&data_file(old_gen));
        Ok(())
    }

    fn open_checkpoint(&self) -> Result<Option<CheckpointData>, StorageError> {
        let Some(raw_meta) = self.fs.read("meta.bin")? else {
            return Ok(None);
        };
        let (next_state, meta) = Self::decode_meta(&raw_meta)?;
        let generation = next_state.generation;
        let data: Arc<str> = Arc::from(data_file(generation).as_str());

        let mut relations = Vec::with_capacity(next_state.directory.len());
        for (name, extent) in &next_state.directory {
            let mut records = Vec::with_capacity(extent.records as usize);
            for page_no in extent.start_page..extent.start_page + extent.pages {
                self.pool.with_page(&*self.fs, &data, page_no, |bytes| {
                    SlottedPage::from_bytes(bytes)
                        .map(|page| records.extend(page.records().map(<[u8]>::to_vec)))
                })??;
            }
            if records.len() as u64 != extent.records {
                return Err(StorageError::corrupt(format!(
                    "relation {name}: directory claims {} record(s), pages hold {}",
                    extent.records,
                    records.len()
                )));
            }
            relations.push((name.clone(), records));
        }

        let wal_name = wal_file(generation);
        let log = self.fs.read(&wal_name)?.unwrap_or_default();
        let outcome = replay(&log);
        if outcome.torn_tail {
            // Drop the torn tail so future appends extend a valid log.
            self.fs
                .write_atomic(&wal_name, &log[..outcome.bytes_consumed])?;
        }
        self.counters
            .recovery_replays
            .add(outcome.records.len() as u64);

        *self.state.lock() = next_state;
        self.wal.rotate_to(wal_name);
        Ok(Some(CheckpointData {
            meta,
            relations,
            wal_records: outcome.records,
            torn_tail: outcome.torn_tail,
            generation,
        }))
    }

    fn page_count(&self, relation: &str) -> Option<u64> {
        self.state
            .lock()
            .directory
            .get(relation)
            .map(|extent| extent.pages)
    }

    fn tuples_per_page(&self) -> Option<u64> {
        let state = self.state.lock();
        if state.total_pages == 0 || state.total_records == 0 {
            return None;
        }
        Some(state.total_records.div_ceil(state.total_pages))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::MemFs;

    fn records(prefix: &str, n: usize) -> Vec<Vec<u8>> {
        // Padded to a realistic tuple size so multi-page extents appear.
        (0..n)
            .map(|i| format!("{prefix}-{i:04}{:>40}", "x").into_bytes())
            .collect()
    }

    fn heap(fs: &MemFs) -> SlottedHeapBackend {
        SlottedHeapBackend::new(
            Arc::new(fs.clone()) as Arc<dyn StorageFs>,
            HeapOptions::default(),
            StorageCounters::detached(),
        )
    }

    #[test]
    fn memory_backend_is_transparent() {
        let b = MemoryBackend;
        assert!(!b.is_persistent());
        b.log(b"ignored").unwrap();
        b.checkpoint(b"m", &[]).unwrap();
        assert!(b.open_checkpoint().unwrap().is_none());
        assert_eq!(b.page_count("r"), None);
        assert_eq!(b.tuples_per_page(), None);
    }

    #[test]
    fn checkpoint_then_reopen_round_trips() {
        let fs = MemFs::new();
        let b = heap(&fs);
        assert!(b.open_checkpoint().unwrap().is_none());
        let rels = vec![
            ("emp".to_string(), records("emp", 300)),
            ("dept".to_string(), records("dept", 5)),
        ];
        b.checkpoint(b"catalog-meta", &rels).unwrap();
        b.log(b"op1").unwrap();
        b.log(b"op2").unwrap();

        let b2 = heap(&fs);
        let data = b2.open_checkpoint().unwrap().unwrap();
        assert_eq!(data.meta, b"catalog-meta");
        assert_eq!(data.generation, 1);
        assert!(!data.torn_tail);
        assert_eq!(data.wal_records, vec![b"op1".to_vec(), b"op2".to_vec()]);
        let by_name: BTreeMap<_, _> = data.relations.iter().cloned().collect();
        assert_eq!(by_name["emp"], records("emp", 300));
        assert_eq!(by_name["dept"], records("dept", 5));
        assert_eq!(b2.counters().recovery_replays.get(), 2);
        assert!(b2.page_count("emp").unwrap() > 1);
        assert_eq!(b2.page_count("dept"), Some(1));
        assert!(b2.tuples_per_page().is_some());
    }

    #[test]
    fn checkpoint_rotates_wal_and_drops_old_generation() {
        let fs = MemFs::new();
        let b = heap(&fs);
        b.checkpoint(b"g1", &[("r".to_string(), records("r", 10))])
            .unwrap();
        b.log(b"before-ckpt").unwrap();
        b.checkpoint(b"g2", &[("r".to_string(), records("r", 11))])
            .unwrap();
        b.log(b"after-ckpt").unwrap();

        let names = fs.list().unwrap();
        assert!(names.contains(&"data_2.pages".to_string()));
        assert!(
            !names.contains(&"data_1.pages".to_string()),
            "old gen not removed: {names:?}"
        );
        assert!(!names.contains(&"wal_1.log".to_string()));

        let b2 = heap(&fs);
        let data = b2.open_checkpoint().unwrap().unwrap();
        assert_eq!(data.generation, 2);
        assert_eq!(data.meta, b"g2");
        assert_eq!(data.wal_records, vec![b"after-ckpt".to_vec()]);
        assert_eq!(data.relations[0].1.len(), 11);
    }

    #[test]
    fn torn_wal_tail_is_truncated_on_open() {
        let fs = MemFs::new();
        let b = heap(&fs);
        b.checkpoint(b"m", &[]).unwrap();
        b.log(b"whole").unwrap();
        b.log(b"torn-record").unwrap();
        let len = fs.len("wal_1.log").unwrap() as usize;
        fs.truncate("wal_1.log", len - 3);

        let b2 = heap(&fs);
        let data = b2.open_checkpoint().unwrap().unwrap();
        assert!(data.torn_tail);
        assert_eq!(data.wal_records, vec![b"whole".to_vec()]);
        // Appends after a torn-tail open must extend a valid log.
        b2.log(b"fresh").unwrap();
        let b3 = heap(&fs);
        let data = b3.open_checkpoint().unwrap().unwrap();
        assert!(!data.torn_tail);
        assert_eq!(data.wal_records, vec![b"whole".to_vec(), b"fresh".to_vec()]);
    }

    #[test]
    fn crash_before_meta_swap_keeps_old_generation() {
        let fs = MemFs::new();
        let b = heap(&fs);
        b.checkpoint(b"old", &[("r".to_string(), records("r", 4))])
            .unwrap();
        b.log(b"logged-on-old").unwrap();
        // Simulate a crash mid-checkpoint: new data/wal files written but
        // meta.bin still names generation 1.
        let snap = fs.snapshot();
        b.checkpoint(b"new", &[("r".to_string(), records("r", 9))])
            .unwrap();
        let mut crashed = snap;
        // Keep the new generation's partial files around as garbage.
        let after = fs.snapshot();
        crashed.insert("data_2.pages".to_string(), after["data_2.pages"].clone());
        crashed.insert("wal_2.log".to_string(), Vec::new());
        fs.restore(crashed);

        let b2 = heap(&fs);
        let data = b2.open_checkpoint().unwrap().unwrap();
        assert_eq!(data.generation, 1);
        assert_eq!(data.meta, b"old");
        assert_eq!(data.relations[0].1.len(), 4);
        assert_eq!(data.wal_records, vec![b"logged-on-old".to_vec()]);
    }

    #[test]
    fn corrupt_meta_is_reported_not_misread() {
        let fs = MemFs::new();
        let b = heap(&fs);
        b.checkpoint(b"m", &[]).unwrap();
        fs.corrupt_byte("meta.bin", 12);
        let b2 = heap(&fs);
        assert!(matches!(
            b2.open_checkpoint(),
            Err(StorageError::Corrupt { .. })
        ));
    }
}
