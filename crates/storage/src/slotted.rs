//! Slotted heap pages: the on-disk tuple layout of the persistent backend.
//!
//! A page is a fixed [`PAGE_SIZE`] byte block with a 4-byte header
//! (record count, free-space offset), a slot directory growing forward
//! from the header, and record payloads growing backward from the end:
//!
//! ```text
//! +--------+-------------------+------------------->   <---------------+
//! | header | slot 0 | slot 1 … |     free space     … | rec 1 | rec 0 |
//! +--------+-------------------+------------------->   <---------------+
//! ```
//!
//! Each slot is `(offset: u16, len: u16)`. Records are opaque byte
//! payloads — the catalog's tuple codec decides what is inside them. The
//! backend packs pages append-only at checkpoint time (no in-page deletes;
//! deleted tuples are tombstone records so `RowId`s survive a reopen), so
//! the layout needs no compaction path.

use crate::error::StorageError;

/// Size of one heap page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Bytes of the fixed page header: record count (`u16`) + free-space
/// offset (`u16`).
pub const PAGE_HEADER: usize = 4;

/// Bytes of one slot-directory entry: payload offset (`u16`) + length
/// (`u16`).
pub const SLOT_BYTES: usize = 4;

/// Largest single record payload a fresh page can accept (one slot plus
/// the payload must fit beside the header).
pub const MAX_RECORD: usize = PAGE_SIZE - PAGE_HEADER - SLOT_BYTES;

/// One slotted page, always exactly [`PAGE_SIZE`] bytes.
#[derive(Debug, Clone)]
pub struct SlottedPage {
    data: Vec<u8>,
}

impl Default for SlottedPage {
    fn default() -> Self {
        SlottedPage::new()
    }
}

impl SlottedPage {
    /// An empty page: zero records, all space free.
    pub fn new() -> SlottedPage {
        let mut data = vec![0u8; PAGE_SIZE];
        // The free offset of an empty page is PAGE_SIZE (4096), which
        // fits a u16 because PAGE_SIZE < 65536.
        write_u16(&mut data, 2, PAGE_SIZE as u16);
        SlottedPage { data }
    }

    /// Reinterpret `bytes` (exactly [`PAGE_SIZE`] of them) as a page,
    /// validating the header and every slot.
    pub fn from_bytes(bytes: &[u8]) -> Result<SlottedPage, StorageError> {
        if bytes.len() != PAGE_SIZE {
            return Err(StorageError::corrupt(format!(
                "page is {} byte(s), expected {PAGE_SIZE}",
                bytes.len()
            )));
        }
        let page = SlottedPage {
            data: bytes.to_vec(),
        };
        let count = page.record_count();
        let free = page.free_offset();
        if free > PAGE_SIZE || PAGE_HEADER + count * SLOT_BYTES > free {
            return Err(StorageError::corrupt(format!(
                "page header claims {count} record(s) with free offset {free}"
            )));
        }
        for i in 0..count {
            let (off, len) = page.slot(i);
            if off < free || off + len > PAGE_SIZE {
                return Err(StorageError::corrupt(format!(
                    "slot {i} points at {off}..{} outside the payload area",
                    off + len
                )));
            }
        }
        Ok(page)
    }

    /// The raw page bytes (always [`PAGE_SIZE`] long).
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Number of records stored on this page.
    pub fn record_count(&self) -> usize {
        read_u16(&self.data, 0) as usize
    }

    /// Bytes still available for one more record (slot entry included).
    pub fn free_space(&self) -> usize {
        let used_front = PAGE_HEADER + self.record_count() * SLOT_BYTES;
        self.free_offset()
            .saturating_sub(used_front)
            .saturating_sub(SLOT_BYTES)
    }

    /// Append a record. Returns `false` when the page is too full (the
    /// caller starts a new page) and an error when the record can never
    /// fit on any page.
    pub fn try_push(&mut self, record: &[u8]) -> Result<bool, StorageError> {
        if record.len() > MAX_RECORD {
            return Err(StorageError::RecordTooLarge {
                bytes: record.len(),
                capacity: MAX_RECORD,
            });
        }
        let count = self.record_count();
        let slot_end = PAGE_HEADER + (count + 1) * SLOT_BYTES;
        let free = self.free_offset();
        if free < slot_end || free - slot_end < record.len() {
            return Ok(false);
        }
        let off = free - record.len();
        self.data[off..free].copy_from_slice(record);
        let slot_at = PAGE_HEADER + count * SLOT_BYTES;
        write_u16(&mut self.data, slot_at, off as u16);
        write_u16(&mut self.data, slot_at + 2, record.len() as u16);
        write_u16(&mut self.data, 0, (count + 1) as u16);
        write_u16(&mut self.data, 2, off as u16);
        Ok(true)
    }

    /// The `i`-th record payload, in insertion order.
    pub fn record(&self, i: usize) -> Result<&[u8], StorageError> {
        if i >= self.record_count() {
            return Err(StorageError::corrupt(format!(
                "record index {i} out of range ({} on page)",
                self.record_count()
            )));
        }
        let (off, len) = self.slot(i);
        Ok(&self.data[off..off + len])
    }

    /// Iterate all record payloads in insertion order.
    pub fn records(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.record_count()).map(move |i| {
            let (off, len) = self.slot(i);
            &self.data[off..off + len]
        })
    }

    fn free_offset(&self) -> usize {
        read_u16(&self.data, 2) as usize
    }

    fn slot(&self, i: usize) -> (usize, usize) {
        let at = PAGE_HEADER + i * SLOT_BYTES;
        (
            read_u16(&self.data, at) as usize,
            read_u16(&self.data, at + 2) as usize,
        )
    }
}

fn read_u16(buf: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([buf[at], buf[at + 1]])
}

fn write_u16(buf: &mut [u8], at: usize, v: u16) {
    buf[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

/// Pack an ordered record stream into as few pages as possible,
/// append-only. Returns the packed pages (at least one, even for an empty
/// stream, so every relation owns a page range).
pub fn pack_records<'a>(
    records: impl IntoIterator<Item = &'a [u8]>,
) -> Result<Vec<SlottedPage>, StorageError> {
    let mut pages = vec![SlottedPage::new()];
    for record in records {
        let fit = pages
            .last_mut()
            .map(|page| page.try_push(record))
            .transpose()?
            .unwrap_or(false);
        if !fit {
            let mut page = SlottedPage::new();
            if !page.try_push(record)? {
                return Err(StorageError::RecordTooLarge {
                    bytes: record.len(),
                    capacity: MAX_RECORD,
                });
            }
            pages.push(page);
        }
    }
    Ok(pages)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back_in_order() {
        let mut page = SlottedPage::new();
        assert_eq!(page.record_count(), 0);
        assert!(page.try_push(b"alpha").unwrap());
        assert!(page.try_push(b"").unwrap());
        assert!(page.try_push(b"gamma!").unwrap());
        assert_eq!(page.record_count(), 3);
        let got: Vec<&[u8]> = page.records().collect();
        assert_eq!(got, vec![&b"alpha"[..], &b""[..], &b"gamma!"[..]]);
        assert_eq!(page.record(2).unwrap(), b"gamma!");
        assert!(page.record(3).is_err());
    }

    #[test]
    fn round_trips_through_bytes() {
        let mut page = SlottedPage::new();
        for i in 0..100u32 {
            assert!(page.try_push(&i.to_le_bytes()).unwrap());
        }
        let restored = SlottedPage::from_bytes(page.as_bytes()).unwrap();
        assert_eq!(restored.record_count(), 100);
        assert_eq!(restored.record(41).unwrap(), 41u32.to_le_bytes());
    }

    #[test]
    fn fills_up_then_reports_full() {
        let mut page = SlottedPage::new();
        let record = [7u8; 100];
        let mut pushed = 0;
        while page.try_push(&record).unwrap() {
            pushed += 1;
        }
        // 100 payload + 4 slot bytes per record within 4092 usable bytes.
        assert_eq!(pushed, (PAGE_SIZE - PAGE_HEADER) / (100 + SLOT_BYTES));
        assert!(page.free_space() < 100 + SLOT_BYTES);
        // Still readable after filling.
        assert_eq!(page.record(pushed - 1).unwrap(), record);
    }

    #[test]
    fn oversized_record_is_an_error_not_full() {
        let mut page = SlottedPage::new();
        let huge = vec![0u8; MAX_RECORD + 1];
        assert!(matches!(
            page.try_push(&huge),
            Err(StorageError::RecordTooLarge { .. })
        ));
        let exact = vec![1u8; MAX_RECORD];
        assert!(page.try_push(&exact).unwrap());
        assert_eq!(page.record(0).unwrap().len(), MAX_RECORD);
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(SlottedPage::from_bytes(&[0u8; 10]).is_err());
        let mut bad = vec![0u8; PAGE_SIZE];
        bad[0] = 0xff; // claims 255 records
        bad[1] = 0xff;
        assert!(SlottedPage::from_bytes(&bad).is_err());
        let mut page = SlottedPage::new();
        page.try_push(b"ok").unwrap();
        let mut bytes = page.as_bytes().to_vec();
        // Point slot 0 into the free area.
        bytes[PAGE_HEADER] = 0x10;
        bytes[PAGE_HEADER + 1] = 0x00;
        assert!(SlottedPage::from_bytes(&bytes).is_err());
    }

    #[test]
    fn pack_records_splits_across_pages() {
        let records: Vec<Vec<u8>> = (0..200).map(|i| vec![i as u8; 100]).collect();
        let refs: Vec<&[u8]> = records.iter().map(Vec::as_slice).collect();
        let pages = pack_records(refs.iter().copied()).unwrap();
        assert!(pages.len() > 1);
        let unpacked: Vec<Vec<u8>> = pages
            .iter()
            .flat_map(|p| p.records().map(<[u8]>::to_vec))
            .collect();
        assert_eq!(unpacked, records);
        // Empty stream still yields one page.
        assert_eq!(pack_records(std::iter::empty()).unwrap().len(), 1);
    }
}
