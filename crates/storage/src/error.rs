//! Errors raised by the storage engine.

use std::fmt;

/// Errors raised by storage backends, the buffer pool, the write-ahead log
/// and the on-disk codecs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An underlying file operation failed.
    Io {
        /// Description of the failed operation.
        detail: String,
    },
    /// Stored bytes did not decode (checksum mismatch, short read, bad
    /// magic, out-of-range tag).  Torn WAL *tails* are **not** reported as
    /// corruption — redo recovery discards them silently — so this variant
    /// means a checkpoint or an already-acknowledged record is damaged.
    Corrupt {
        /// Description of the undecodable state.
        detail: String,
    },
    /// A single record does not fit into one slotted page.
    RecordTooLarge {
        /// Size of the offending record in bytes.
        bytes: usize,
        /// Maximum record payload a page can hold.
        capacity: usize,
    },
    /// The operation is not supported by this backend.
    Unsupported {
        /// Description of the unsupported operation.
        detail: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { detail } => write!(f, "storage I/O error: {detail}"),
            StorageError::Corrupt { detail } => write!(f, "corrupt storage state: {detail}"),
            StorageError::RecordTooLarge { bytes, capacity } => write!(
                f,
                "record of {bytes} byte(s) exceeds the page record capacity of {capacity}"
            ),
            StorageError::Unsupported { detail } => {
                write!(f, "unsupported storage operation: {detail}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl StorageError {
    /// Convenience constructor for I/O failures.
    pub fn io(context: &str, e: &std::io::Error) -> Self {
        StorageError::Io {
            detail: format!("{context}: {e}"),
        }
    }

    /// Convenience constructor for corruption reports.
    pub fn corrupt(detail: impl Into<String>) -> Self {
        StorageError::Corrupt {
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_cause() {
        let e = StorageError::corrupt("bad magic");
        assert!(e.to_string().contains("bad magic"));
        let e = StorageError::RecordTooLarge {
            bytes: 9000,
            capacity: 4088,
        };
        assert!(e.to_string().contains("9000"));
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        assert!(StorageError::io("open meta.bin", &io)
            .to_string()
            .contains("meta.bin"));
    }
}
