//! `pascalr-storage`: the storage engine.
//!
//! Three layers live here:
//!
//! 1. **Backends** ([`StorageBackend`]): where tuples survive (or don't).
//!    [`MemoryBackend`] is the zero-cost default; [`SlottedHeapBackend`]
//!    persists slotted heap pages through a fixed-capacity [`BufferPool`],
//!    logs every mutation to a CRC-framed write-ahead log, and performs
//!    redo recovery on open. The file layer beneath it ([`StorageFs`]) has
//!    a real-directory implementation ([`DiskFs`]) and an in-memory
//!    fault-injecting one ([`MemFs`]) for crash tests.
//! 2. **Costing** ([`PageModel`]): the optimizer's view of the blocking
//!    factor. When the persistent backend is active its measured
//!    records-per-page figure grounds the model; otherwise the default
//!    models the paper's cost arguments.
//! 3. **Access metrics** ([`Metrics`]): per-query counts of relation
//!    reads, page accesses and comparisons, reproducing the paper's
//!    Section 4 accounting in measurable form.

#![forbid(unsafe_code)]

pub mod backend;
pub mod buffer;
pub mod codec;
pub mod counters;
pub mod error;
pub mod fs;
pub mod metrics;
pub mod pages;
pub mod slotted;
pub mod wal;

pub use backend::{CheckpointData, HeapOptions, MemoryBackend, SlottedHeapBackend, StorageBackend};
pub use buffer::{BufferPool, PoolCounters};
pub use codec::{Dec, Enc};
pub use counters::StorageCounters;
pub use error::StorageError;
pub use fs::{DiskFs, MemFs, StorageFs};
pub use metrics::{Counters, Metrics, MetricsSnapshot, Phase};
pub use pages::PageModel;
pub use slotted::{SlottedPage, MAX_RECORD, PAGE_SIZE};
pub use wal::FsyncPolicy;
