//! `pascalr-storage`: paged access simulation and the metrics registry used
//! to reproduce the paper's cost arguments (relation reads, intermediate
//! structure sizes, comparison counts) in measurable form.

#![forbid(unsafe_code)]

pub mod metrics;
pub mod pages;

pub use metrics::{Counters, Metrics, MetricsSnapshot, Phase};
pub use pages::PageModel;
