//! `pascalr-storage`: paged access simulation and the metrics registry used
//! to reproduce the paper's cost arguments (relation reads, intermediate
//! structure sizes, comparison counts) in measurable form.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod metrics;
pub mod pages;

pub use metrics::{Counters, Metrics, MetricsSnapshot, Phase};
pub use pages::PageModel;
