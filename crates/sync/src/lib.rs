//! The workspace's single doorway to synchronization primitives.
//!
//! Every pascalr crate that holds a lock, an atomic, or spawns a thread
//! imports it from here — never from `std::sync` or `parking_lot`
//! directly (`tests/repo_lints.rs` enforces this at CI time).  The payoff
//! is a compile-time switch:
//!
//! * **Normally** the facade re-exports the production primitives:
//!   [`std::sync::Arc`], `parking_lot`'s `Mutex`/`RwLock` (non-poisoning
//!   guards) and `std`'s atomics and threads.  Zero overhead — every item
//!   is a plain re-export.
//! * **Under `RUSTFLAGS="--cfg loom"`** the same names come from the
//!   vendored `loom` model checker instead, whose primitives make every
//!   acquire/release/atomic-op a *schedulable point*.  `loom::model`
//!   then explores the distinct thread interleavings of a test body
//!   exhaustively (with bounded preemptions), turning the stress-sampled
//!   concurrency invariants of this workspace into checked ones.  See
//!   `tests/loom_models.rs` for the model suite and the README's
//!   "Concurrency correctness" section for how to run it.
//!
//! `Arc` is identical (`std::sync::Arc`) in both modes, so holding an
//! `Arc` in a public type never changes that type's API across cfgs.

#[cfg(not(loom))]
pub use std::sync::Arc;

#[cfg(loom)]
pub use loom::sync::Arc;

#[cfg(not(loom))]
pub use std::sync::{MutexGuard, Weak};

#[cfg(not(loom))]
pub use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(loom)]
pub use loom::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Atomic integer and bool types plus [`atomic::Ordering`].
///
/// Under `--cfg loom` every operation on these types is a schedulable
/// point of the model checker.
pub mod atomic {
    #[cfg(not(loom))]
    pub use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};

    #[cfg(loom)]
    pub use loom::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

/// Thread spawn, join and yield.
///
/// Under `--cfg loom`, threads spawned inside a `loom::model` body become
/// managed threads of the model's schedule.
pub mod thread {
    #[cfg(not(loom))]
    pub use std::thread::{spawn, yield_now, JoinHandle};

    #[cfg(loom)]
    pub use loom::thread::{spawn, yield_now, JoinHandle};
}

/// The vendored model checker itself (`pascalr_sync::loom::model`,
/// `Builder`, `Stats`), re-exported so model tests need no direct `loom`
/// dependency.  Only present under `RUSTFLAGS="--cfg loom"`.
#[cfg(loom)]
pub use ::loom;

#[cfg(test)]
mod tests {
    use super::atomic::{AtomicU64, Ordering};
    use super::{Arc, Mutex, RwLock};

    #[test]
    fn facade_primitives_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let rw = RwLock::new(String::from("a"));
        rw.write().push('b');
        assert_eq!(rw.read().as_str(), "ab");

        let a = AtomicU64::new(5);
        a.fetch_add(2, Ordering::Relaxed);
        assert_eq!(a.load(Ordering::Relaxed), 7);

        let arc = Arc::new(3);
        assert_eq!(*Arc::clone(&arc), 3);
    }

    #[test]
    fn threads_spawn_and_join() {
        let shared = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let shared = Arc::clone(&shared);
                super::thread::spawn(move || {
                    shared.fetch_add(1, Ordering::SeqCst);
                    super::thread::yield_now();
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        assert_eq!(shared.load(Ordering::SeqCst), 4);
    }
}
