//! Strategy levels: cumulative application of the paper's four optimization
//! strategies on top of the naive Palermo-style baseline.

use std::fmt;

use serde::{Deserialize, Serialize};

/// How much of Section 4's optimization repertoire the planner applies.
///
/// Levels are *cumulative*: `S2OneStep` includes parallel evaluation,
/// `S4CollectionQuantifiers` includes everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StrategyLevel {
    /// Naive baseline (Palermo-style, Section 3.3 taken literally): every
    /// monadic and dyadic join term is evaluated by its own scan of the
    /// relation(s) involved; conjunctions are combined in the combination
    /// phase.
    S0Baseline,
    /// Strategy 1 — parallel evaluation of subexpressions: all join-term work
    /// on a relation happens during a single scan of that relation
    /// (Section 4.1, Example 4.3).
    S1Parallel,
    /// Strategy 2 — one-step evaluation of nested subexpressions: within a
    /// conjunction, monadic terms restrict the indirect joins of dyadic
    /// terms over the same variable (Section 4.2, Example 4.2).
    S2OneStep,
    /// Strategy 3 — extended range expressions (Section 4.3, Examples
    /// 4.4/4.5).
    S3ExtendedRanges,
    /// Strategy 4 — quantifier evaluation in the collection phase via value
    /// lists (generalized semi-joins, Section 4.4, Examples 4.6/4.7).
    S4CollectionQuantifiers,
    /// Cost-based automatic selection: the planner estimates the paper's
    /// observable costs (tuples read, comparisons, intermediate tuples,
    /// dereferences) for each of the five fixed levels using the catalog's
    /// ANALYZE statistics and picks the cheapest.  The produced plan
    /// carries the *chosen* fixed level in [`crate::QueryPlan::strategy`]
    /// together with the per-level cost table and the per-conjunction
    /// cardinality estimates (shown by `explain`).
    Auto,
}

impl StrategyLevel {
    /// The five *fixed* paper levels in increasing order of sophistication
    /// ([`StrategyLevel::Auto`] is deliberately excluded: it is a selection
    /// policy over these, not a sixth repertoire).
    pub const ALL: [StrategyLevel; 5] = [
        StrategyLevel::S0Baseline,
        StrategyLevel::S1Parallel,
        StrategyLevel::S2OneStep,
        StrategyLevel::S3ExtendedRanges,
        StrategyLevel::S4CollectionQuantifiers,
    ];

    /// Whether per-relation (parallel) scanning is enabled (Strategy 1+).
    pub fn parallel_scans(self) -> bool {
        self >= StrategyLevel::S1Parallel
    }

    /// Whether monadic terms restrict indirect joins (Strategy 2+).
    pub fn one_step_nested(self) -> bool {
        self >= StrategyLevel::S2OneStep
    }

    /// Whether range expressions are extended (Strategy 3+).
    pub fn extended_ranges(self) -> bool {
        self >= StrategyLevel::S3ExtendedRanges
    }

    /// Whether quantifiers are evaluated in the collection phase where
    /// possible (Strategy 4).
    pub fn collection_quantifiers(self) -> bool {
        self >= StrategyLevel::S4CollectionQuantifiers
    }

    /// Whether this is the cost-based automatic selection policy.
    pub fn is_auto(self) -> bool {
        self == StrategyLevel::Auto
    }

    /// Short name used in reports (`S0` … `S4`, `Auto`).
    pub fn short_name(self) -> &'static str {
        match self {
            StrategyLevel::S0Baseline => "S0",
            StrategyLevel::S1Parallel => "S1",
            StrategyLevel::S2OneStep => "S2",
            StrategyLevel::S3ExtendedRanges => "S3",
            StrategyLevel::S4CollectionQuantifiers => "S4",
            StrategyLevel::Auto => "Auto",
        }
    }

    /// Descriptive name.
    pub fn description(self) -> &'static str {
        match self {
            StrategyLevel::S0Baseline => "naive baseline (one scan per join term)",
            StrategyLevel::S1Parallel => "parallel evaluation (one scan per relation)",
            StrategyLevel::S2OneStep => "one-step nested subexpressions",
            StrategyLevel::S3ExtendedRanges => "extended range expressions",
            StrategyLevel::S4CollectionQuantifiers => "collection-phase quantifier evaluation",
            StrategyLevel::Auto => "cost-based automatic strategy selection",
        }
    }
}

impl fmt::Display for StrategyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.short_name(), self.description())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_cumulative() {
        assert!(!StrategyLevel::S0Baseline.parallel_scans());
        assert!(StrategyLevel::S1Parallel.parallel_scans());
        assert!(!StrategyLevel::S1Parallel.one_step_nested());
        assert!(StrategyLevel::S2OneStep.one_step_nested());
        assert!(StrategyLevel::S2OneStep.parallel_scans());
        assert!(!StrategyLevel::S2OneStep.extended_ranges());
        assert!(StrategyLevel::S3ExtendedRanges.extended_ranges());
        assert!(!StrategyLevel::S3ExtendedRanges.collection_quantifiers());
        assert!(StrategyLevel::S4CollectionQuantifiers.collection_quantifiers());
        assert!(StrategyLevel::S4CollectionQuantifiers.extended_ranges());
    }

    #[test]
    fn ordering_and_names() {
        let mut sorted = StrategyLevel::ALL;
        sorted.sort();
        assert_eq!(sorted, StrategyLevel::ALL);
        for (i, s) in StrategyLevel::ALL.iter().enumerate() {
            assert_eq!(s.short_name(), format!("S{i}"));
            assert!(!s.description().is_empty());
            assert!(s.to_string().contains(s.short_name()));
            assert!(!s.is_auto());
        }
    }

    #[test]
    fn auto_is_a_policy_over_the_fixed_levels() {
        assert!(StrategyLevel::Auto.is_auto());
        assert!(!StrategyLevel::ALL.contains(&StrategyLevel::Auto));
        assert_eq!(StrategyLevel::Auto.short_name(), "Auto");
        assert!(StrategyLevel::Auto.to_string().contains("cost-based"));
        // If an Auto marker ever leaks into execution-side feature checks,
        // it must behave like the full repertoire, never like a downgrade.
        assert!(StrategyLevel::Auto.parallel_scans());
        assert!(StrategyLevel::Auto.one_step_nested());
        assert!(StrategyLevel::Auto.extended_ranges());
        assert!(StrategyLevel::Auto.collection_quantifiers());
    }
}
