//! Strategy levels: cumulative application of the paper's four optimization
//! strategies on top of the naive Palermo-style baseline.

use std::fmt;

use serde::{Deserialize, Serialize};

/// How much of Section 4's optimization repertoire the planner applies.
///
/// Levels are *cumulative*: `S2OneStep` includes parallel evaluation,
/// `S4CollectionQuantifiers` includes everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StrategyLevel {
    /// Naive baseline (Palermo-style, Section 3.3 taken literally): every
    /// monadic and dyadic join term is evaluated by its own scan of the
    /// relation(s) involved; conjunctions are combined in the combination
    /// phase.
    S0Baseline,
    /// Strategy 1 — parallel evaluation of subexpressions: all join-term work
    /// on a relation happens during a single scan of that relation
    /// (Section 4.1, Example 4.3).
    S1Parallel,
    /// Strategy 2 — one-step evaluation of nested subexpressions: within a
    /// conjunction, monadic terms restrict the indirect joins of dyadic
    /// terms over the same variable (Section 4.2, Example 4.2).
    S2OneStep,
    /// Strategy 3 — extended range expressions (Section 4.3, Examples
    /// 4.4/4.5).
    S3ExtendedRanges,
    /// Strategy 4 — quantifier evaluation in the collection phase via value
    /// lists (generalized semi-joins, Section 4.4, Examples 4.6/4.7).
    S4CollectionQuantifiers,
}

impl StrategyLevel {
    /// All levels in increasing order of sophistication.
    pub const ALL: [StrategyLevel; 5] = [
        StrategyLevel::S0Baseline,
        StrategyLevel::S1Parallel,
        StrategyLevel::S2OneStep,
        StrategyLevel::S3ExtendedRanges,
        StrategyLevel::S4CollectionQuantifiers,
    ];

    /// Whether per-relation (parallel) scanning is enabled (Strategy 1+).
    pub fn parallel_scans(self) -> bool {
        self >= StrategyLevel::S1Parallel
    }

    /// Whether monadic terms restrict indirect joins (Strategy 2+).
    pub fn one_step_nested(self) -> bool {
        self >= StrategyLevel::S2OneStep
    }

    /// Whether range expressions are extended (Strategy 3+).
    pub fn extended_ranges(self) -> bool {
        self >= StrategyLevel::S3ExtendedRanges
    }

    /// Whether quantifiers are evaluated in the collection phase where
    /// possible (Strategy 4).
    pub fn collection_quantifiers(self) -> bool {
        self >= StrategyLevel::S4CollectionQuantifiers
    }

    /// Short name used in reports (`S0` … `S4`).
    pub fn short_name(self) -> &'static str {
        match self {
            StrategyLevel::S0Baseline => "S0",
            StrategyLevel::S1Parallel => "S1",
            StrategyLevel::S2OneStep => "S2",
            StrategyLevel::S3ExtendedRanges => "S3",
            StrategyLevel::S4CollectionQuantifiers => "S4",
        }
    }

    /// Descriptive name.
    pub fn description(self) -> &'static str {
        match self {
            StrategyLevel::S0Baseline => "naive baseline (one scan per join term)",
            StrategyLevel::S1Parallel => "parallel evaluation (one scan per relation)",
            StrategyLevel::S2OneStep => "one-step nested subexpressions",
            StrategyLevel::S3ExtendedRanges => "extended range expressions",
            StrategyLevel::S4CollectionQuantifiers => "collection-phase quantifier evaluation",
        }
    }
}

impl fmt::Display for StrategyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.short_name(), self.description())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_cumulative() {
        assert!(!StrategyLevel::S0Baseline.parallel_scans());
        assert!(StrategyLevel::S1Parallel.parallel_scans());
        assert!(!StrategyLevel::S1Parallel.one_step_nested());
        assert!(StrategyLevel::S2OneStep.one_step_nested());
        assert!(StrategyLevel::S2OneStep.parallel_scans());
        assert!(!StrategyLevel::S2OneStep.extended_ranges());
        assert!(StrategyLevel::S3ExtendedRanges.extended_ranges());
        assert!(!StrategyLevel::S3ExtendedRanges.collection_quantifiers());
        assert!(StrategyLevel::S4CollectionQuantifiers.collection_quantifiers());
        assert!(StrategyLevel::S4CollectionQuantifiers.extended_ranges());
    }

    #[test]
    fn ordering_and_names() {
        let mut sorted = StrategyLevel::ALL;
        sorted.sort();
        assert_eq!(sorted, StrategyLevel::ALL);
        for (i, s) in StrategyLevel::ALL.iter().enumerate() {
            assert_eq!(s.short_name(), format!("S{i}"));
            assert!(!s.description().is_empty());
            assert!(s.to_string().contains(s.short_name()));
        }
    }
}
