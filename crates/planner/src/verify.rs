//! The plan verifier: structural invariant checks on every [`QueryPlan`],
//! in the spirit of LLVM's IR verifier.
//!
//! The planner's transformations (standardization, range extension,
//! semijoin peeling, index selection) each maintain invariants the
//! executor relies on.  [`verify_plan`] re-checks them from scratch on the
//! finished plan, so a planner bug surfaces at plan time as a precise
//! message instead of as a wrong result or a panic deep in the executor.
//! `plan()` runs the verifier after every planning pass under
//! `debug_assertions` (debug builds, tests, and the CI release run with
//! `-C debug-assertions`); release builds skip it.

use std::collections::BTreeSet;

use pascalr_catalog::Catalog;
use pascalr_relation::CompareOp;

use crate::plan::QueryPlan;

/// Checks the structural invariants of a finished plan.  Returns every
/// violation found (empty `Err` is never produced — `Ok(())` means the
/// plan is well-formed).
pub fn verify_plan(plan: &QueryPlan, catalog: &Catalog) -> Result<(), Vec<String>> {
    let mut violations: Vec<String> = Vec::new();
    let prepared = &plan.prepared;
    let all_vars = prepared.all_vars();
    let is_bound = |var: &str| all_vars.iter().any(|v| v.as_ref() == var);

    // 1. The derived-predicate table is index-aligned with the matrix.
    if plan.derived_predicates.len() != prepared.form.matrix.len() {
        violations.push(format!(
            "derived-predicate table has {} entries for {} matrix conjunction(s)",
            plan.derived_predicates.len(),
            prepared.form.matrix.len()
        ));
    }

    // 2. No duplicate variable declarations (free + prefix).
    let mut seen_vars: BTreeSet<&str> = BTreeSet::new();
    for var in &all_vars {
        if !seen_vars.insert(var.as_ref()) {
            violations.push(format!("variable '{var}' is declared more than once"));
        }
    }

    // 3. Every matrix term speaks only of declared variables, and every
    //    prefix variable still occurs somewhere (vacuous ones must have
    //    been dropped).
    for (ci, conj) in prepared.form.matrix.iter().enumerate() {
        for term in &conj.terms {
            for var in term.vars() {
                if !is_bound(var.as_ref()) {
                    violations.push(format!(
                        "conjunction #{} term ({term}) mentions undeclared variable '{var}'",
                        ci + 1
                    ));
                }
            }
        }
    }
    for entry in &prepared.form.prefix {
        let used = prepared.form.matrix.iter().any(|c| c.mentions(&entry.var))
            || plan
                .semijoin_steps
                .iter()
                .any(|s| s.target_var.as_ref() == entry.var.as_ref());
        if !used {
            violations.push(format!(
                "prefix variable '{}' occurs in no conjunction and no semijoin step \
                 (vacuous quantifiers must be dropped)",
                entry.var
            ));
        }
    }

    // 4. Semijoin steps are internally consistent: valid conjunction index,
    //    bound variable absent from prefix and matrix, target variable
    //    declared, and `consumes` only references *earlier* steps whose
    //    derived predicate targets this step's bound variable.
    for (si, step) in plan.semijoin_steps.iter().enumerate() {
        if step.conjunction >= prepared.form.matrix.len() {
            violations.push(format!(
                "semijoin step #{} references conjunction #{} of {}",
                si + 1,
                step.conjunction + 1,
                prepared.form.matrix.len()
            ));
        }
        if is_bound(step.bound_var.as_ref()) {
            violations.push(format!(
                "semijoin step #{} bound variable '{}' is still declared in the plan",
                si + 1,
                step.bound_var
            ));
        }
        if let Some(conj) = prepared.form.matrix.get(step.conjunction) {
            if conj.mentions(&step.bound_var) {
                violations.push(format!(
                    "semijoin step #{} bound variable '{}' still occurs in conjunction #{}",
                    si + 1,
                    step.bound_var,
                    step.conjunction + 1
                ));
            }
        }
        if !is_bound(step.target_var.as_ref()) {
            let is_later_bound = plan.semijoin_steps[si + 1..]
                .iter()
                .any(|later| later.bound_var.as_ref() == step.target_var.as_ref());
            if !is_later_bound {
                violations.push(format!(
                    "semijoin step #{} targets undeclared variable '{}'",
                    si + 1,
                    step.target_var
                ));
            }
        }
        for &consumed in &step.consumes {
            if consumed >= si {
                violations.push(format!(
                    "semijoin step #{} consumes step #{} which does not precede it",
                    si + 1,
                    consumed + 1
                ));
            } else if plan.semijoin_steps[consumed].target_var.as_ref() != step.bound_var.as_ref() {
                violations.push(format!(
                    "semijoin step #{} consumes step #{} whose predicate targets '{}', \
                     not its bound variable '{}'",
                    si + 1,
                    consumed + 1,
                    plan.semijoin_steps[consumed].target_var,
                    step.bound_var
                ));
            }
        }
        if step.links.is_empty() {
            violations.push(format!(
                "semijoin step #{} has no dyadic link to its target",
                si + 1
            ));
        }
    }

    // 5. The derived-predicate table only references real steps, each
    //    assigned to the conjunction it was derived from.
    for (ci, preds) in plan.derived_predicates.iter().enumerate() {
        for &s in preds {
            match plan.semijoin_steps.get(s) {
                None => violations.push(format!(
                    "conjunction #{} references semijoin step #{} of {}",
                    ci + 1,
                    s + 1,
                    plan.semijoin_steps.len()
                )),
                Some(step) if step.conjunction != ci => violations.push(format!(
                    "conjunction #{} applies semijoin step #{} derived from conjunction #{}",
                    ci + 1,
                    s + 1,
                    step.conjunction + 1
                )),
                Some(_) => {}
            }
        }
    }

    // 6. The scan order covers every range relation exactly once.
    let mut expected: BTreeSet<&str> = BTreeSet::new();
    for d in &prepared.free {
        expected.insert(d.range.relation.as_ref());
    }
    for p in &prepared.form.prefix {
        expected.insert(p.range.relation.as_ref());
    }
    for s in &plan.semijoin_steps {
        expected.insert(s.range.relation.as_ref());
    }
    let mut scanned: BTreeSet<&str> = BTreeSet::new();
    for rel in &plan.scan_order {
        if !scanned.insert(rel.as_ref()) {
            violations.push(format!("scan order lists relation '{rel}' twice"));
        }
    }
    for rel in expected.difference(&scanned) {
        violations.push(format!("scan order is missing range relation '{rel}'"));
    }
    for rel in scanned.difference(&expected) {
        violations.push(format!(
            "scan order lists relation '{rel}' which no range declaration uses"
        ));
    }

    // 7. Every index the plan claims to rely on exists in the catalog and
    //    covers either a restricted range's relation or the probed side of
    //    an equality join the plan actually contains.
    for name in &plan.used_indexes {
        let Some(decl) = catalog.indexes().find(|d| &d.name == name) else {
            violations.push(format!(
                "plan relies on index '{name}' which the catalog does not declare"
            ));
            continue;
        };
        let serves_range = plan
            .scan_order
            .iter()
            .any(|rel| rel.as_ref() == decl.relation);
        if !serves_range {
            violations.push(format!(
                "plan relies on index '{name}' on relation '{}' which the plan never scans",
                decl.relation
            ));
        }
    }

    // 8. Equality-join agreement with the optimizer's assembly order: for
    //    every dyadic equality term, both sides must be placed by the order
    //    the executor will use (the probed side is the later one).
    for (ci, conj) in prepared.form.matrix.iter().enumerate() {
        let order = pascalr_optimizer::assembly_order(conj, &all_vars, |v| {
            conj.mentions(v)
                || plan.derived_predicates.get(ci).is_some_and(|preds| {
                    preds
                        .iter()
                        .any(|&s| plan.semijoin_steps[s].target_var.as_ref() == v)
                })
        });
        for term in conj.terms.iter().filter(|t| t.is_dyadic()) {
            let tvars: Vec<_> = term.vars().into_iter().collect();
            if tvars.len() != 2 {
                continue;
            }
            let Some((_, op, _, _)) = term.as_dyadic_over(&tvars[0]) else {
                continue;
            };
            if op != CompareOp::Eq {
                continue;
            }
            for v in &tvars {
                if !order.iter().any(|o| o.as_ref() == v.as_ref()) {
                    violations.push(format!(
                        "conjunction #{} equality join ({term}): variable '{v}' is not \
                         placed by the assembly order",
                        ci + 1
                    ));
                }
            }
        }
    }

    // 9. The row budget survives into the plan unchanged only as a
    //    non-zero bound (a zero budget would make every plan vacuously
    //    empty — the API never produces one).
    if plan.row_budget == Some(0) {
        violations.push("plan carries a zero row budget".to_string());
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{plan, PlanOptions};
    use crate::strategy::StrategyLevel;
    use pascalr_parser::paper::EXAMPLE_2_1_QUERY;
    use pascalr_parser::parse_selection;
    use pascalr_workload::figure1_sample_database;

    #[test]
    fn well_formed_plans_verify_at_every_level() {
        let cat = figure1_sample_database().unwrap();
        let sel = parse_selection(EXAMPLE_2_1_QUERY, &cat).unwrap();
        for level in StrategyLevel::ALL {
            let p = plan(&sel, &cat, level, PlanOptions::default());
            assert_eq!(verify_plan(&p, &cat), Ok(()), "{level}");
        }
    }

    #[test]
    fn corrupted_plans_are_rejected_with_precise_messages() {
        let cat = figure1_sample_database().unwrap();
        let sel = parse_selection(EXAMPLE_2_1_QUERY, &cat).unwrap();
        let good = plan(
            &sel,
            &cat,
            StrategyLevel::S4CollectionQuantifiers,
            PlanOptions::default(),
        );

        // Truncate the derived-predicate table.
        let mut p = good.clone();
        p.derived_predicates.pop();
        let errs = verify_plan(&p, &cat).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("derived-predicate table")),
            "{errs:?}"
        );

        // Drop a scanned relation.
        let mut p = good.clone();
        p.scan_order.pop();
        let errs = verify_plan(&p, &cat).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("scan order is missing")),
            "{errs:?}"
        );

        // Claim a nonexistent index.
        let mut p = good.clone();
        p.used_indexes.push("no_such_index".to_string());
        let errs = verify_plan(&p, &cat).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.contains("'no_such_index'") && e.contains("does not declare")),
            "{errs:?}"
        );

        // Point a semijoin step at a later step.
        let mut p = good.clone();
        if let Some(step) = p.semijoin_steps.first_mut() {
            step.consumes.push(5);
            let errs = verify_plan(&p, &cat).unwrap_err();
            assert!(
                errs.iter().any(|e| e.contains("does not precede")),
                "{errs:?}"
            );
        }

        // A zero row budget is structurally invalid.
        let mut p = good.clone();
        p.row_budget = Some(0);
        let errs = verify_plan(&p, &cat).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("zero row budget")),
            "{errs:?}"
        );
    }

    #[test]
    fn every_workload_query_verifies_at_every_level() {
        let cat = figure1_sample_database().unwrap();
        for q in pascalr_workload::all_queries() {
            let sel = q.parse(&cat).unwrap();
            for level in [
                StrategyLevel::S0Baseline,
                StrategyLevel::S1Parallel,
                StrategyLevel::S2OneStep,
                StrategyLevel::S3ExtendedRanges,
                StrategyLevel::S4CollectionQuantifiers,
                StrategyLevel::Auto,
            ] {
                let p = plan(&sel, &cat, level, PlanOptions::default());
                assert_eq!(verify_plan(&p, &cat), Ok(()), "query {} at {level}", q.id);
            }
        }
    }
}
