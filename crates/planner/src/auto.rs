//! Cost-based automatic strategy selection ([`StrategyLevel::Auto`]).
//!
//! The paper's Section 4 presents five strategy levels and argues that
//! which one wins depends on the cardinalities of the range relations.
//! This module closes that loop: it plans the selection at every fixed
//! level, asks the `pascalr-optimizer` cost model (fed by the catalog's
//! ANALYZE statistics) for the predicted cost of each candidate, and
//! returns the cheapest plan — with the full candidate cost table attached
//! so `explain()` can show *why* a level was chosen.

use pascalr_calculus::Selection;
use pascalr_catalog::Catalog;
use pascalr_optimizer::{CostWeights, StatsView, StrategyFeatures};

use crate::plan::QueryPlan;
use crate::planner::{plan_fixed, PlanOptions};
use crate::strategy::StrategyLevel;

/// Maps a fixed strategy level onto the optimizer's feature flags.
pub(crate) fn features_of(level: StrategyLevel) -> StrategyFeatures {
    StrategyFeatures {
        parallel_scans: level.parallel_scans(),
        one_step: level.one_step_nested(),
        extended_ranges: level.extended_ranges(),
        collection_quantifiers: level.collection_quantifiers(),
    }
}

/// Plans the selection at every fixed level and returns the cheapest
/// candidate under the default cost weights.  Ties go to the *higher*
/// (more sophisticated) level — the paper's strategies are cumulative, so
/// at equal predicted cost the richer repertoire is the safer bet.
pub(crate) fn plan_auto(
    selection: &Selection,
    catalog: &Catalog,
    options: PlanOptions,
    stats: &StatsView,
) -> QueryPlan {
    let weights = CostWeights::default();
    let mut candidates: Vec<QueryPlan> = StrategyLevel::ALL
        .iter()
        .map(|&level| {
            let _span = pascalr_obs::span!("price_candidate", level = level.short_name());
            plan_fixed(selection, catalog, level, options, stats)
        })
        .collect();
    let costs: Vec<f64> = candidates
        .iter()
        .map(|p| p.estimates.as_ref().map_or(f64::INFINITY, |e| e.total_cost))
        .collect();
    let mut best = 0;
    for (i, &cost) in costs.iter().enumerate() {
        if cost <= costs[best] {
            best = i;
        }
    }

    let table: Vec<(StrategyLevel, f64)> = StrategyLevel::ALL
        .iter()
        .copied()
        .zip(costs.iter().copied())
        .collect();
    let mut chosen = candidates.swap_remove(best);
    let rationale = {
        let parts: Vec<String> = table
            .iter()
            .map(|(level, cost)| format!("{}={:.0}", level.short_name(), cost))
            .collect();
        format!(
            "auto: selected {} by weighted cost {:.0} (tuple={} cmp={} inter={} deref={}; \
             candidates: {})",
            chosen.strategy.short_name(),
            costs[best],
            weights.tuple_read,
            weights.comparison,
            weights.intermediate,
            weights.dereference,
            parts.join(", ")
        )
    };
    if let Some(est) = chosen.estimates.as_mut() {
        est.auto_selected = true;
        est.candidate_costs = table;
    }
    chosen.notes.push(rationale);
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::plan;
    use pascalr_parser::paper::EXAMPLE_2_1_QUERY;
    use pascalr_parser::parse_selection;
    use pascalr_workload::figure1_sample_database;

    #[test]
    fn features_map_matches_the_cumulative_levels() {
        let f = features_of(StrategyLevel::S0Baseline);
        assert!(!f.parallel_scans && !f.one_step && !f.extended_ranges);
        let f = features_of(StrategyLevel::S2OneStep);
        assert!(f.parallel_scans && f.one_step && !f.extended_ranges);
        let f = features_of(StrategyLevel::S4CollectionQuantifiers);
        assert!(f.extended_ranges && f.collection_quantifiers);
    }

    #[test]
    fn auto_plans_record_the_chosen_level_and_the_candidate_table() {
        let mut cat = figure1_sample_database().unwrap();
        cat.analyze_all().unwrap();
        let sel = parse_selection(EXAMPLE_2_1_QUERY, &cat).unwrap();
        let p = plan(&sel, &cat, StrategyLevel::Auto, PlanOptions::default());
        assert!(
            StrategyLevel::ALL.contains(&p.strategy),
            "auto must choose a concrete fixed level, got {}",
            p.strategy
        );
        let est = p.estimates.as_ref().expect("auto plans carry estimates");
        assert!(est.auto_selected);
        assert_eq!(est.candidate_costs.len(), 5);
        // The chosen level is minimal in the table (ties break upward).
        let chosen_cost = est
            .candidate_costs
            .iter()
            .find(|(l, _)| *l == p.strategy)
            .map(|(_, c)| *c)
            .unwrap();
        for (_, c) in &est.candidate_costs {
            assert!(chosen_cost <= *c + 1e-9);
        }
        assert!(p.explain().contains("auto strategy selection"));
        assert!(p.notes.iter().any(|n| n.starts_with("auto: selected")));
    }

    #[test]
    fn auto_avoids_the_baseline_when_cardinalities_grow() {
        // On a scaled database the naive baseline's re-scanning and the
        // cartesian combination blow-up must price it out.
        let mut cat =
            pascalr_workload::generate(&pascalr_workload::UniversityConfig::at_scale(4)).unwrap();
        cat.analyze_all().unwrap();
        let sel = parse_selection(EXAMPLE_2_1_QUERY, &cat).unwrap();
        let p = plan(&sel, &cat, StrategyLevel::Auto, PlanOptions::default());
        assert!(
            p.strategy >= StrategyLevel::S3ExtendedRanges,
            "expected an advanced level on a scaled database, got {} ({})",
            p.strategy,
            p.explain()
        );
    }

    #[test]
    fn auto_works_without_analyze_statistics() {
        // Without ANALYZE the model falls back to live cardinalities and
        // default selectivities; auto must still pick a valid level.
        let cat = figure1_sample_database().unwrap();
        let sel = parse_selection(EXAMPLE_2_1_QUERY, &cat).unwrap();
        let p = plan(&sel, &cat, StrategyLevel::Auto, PlanOptions::default());
        assert!(StrategyLevel::ALL.contains(&p.strategy));
        assert!(p.estimates.as_ref().unwrap().auto_selected);
    }
}
