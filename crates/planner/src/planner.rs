//! The planner: turns a selection plus a strategy level into a
//! [`QueryPlan`].
//!
//! Planning is a pipeline of the paper's transformations:
//!
//! 1. standardize (Section 2);
//! 2. at S3+, extend range expressions (Section 4.3);
//! 3. drop quantified variables that occur in no join term (their ranges are
//!    assumed non-empty by the standard form);
//! 4. at S4, repeatedly peel the innermost quantified variable that occurs in
//!    exactly one conjunction and is linked to exactly one other variable,
//!    turning it into a collection-phase value-list step (Section 4.4);
//! 5. choose a relation scan order for the parallel collection phase
//!    (Strategy 1) — smaller relations first, so their indexes exist by the
//!    time larger relations are scanned and probed against them.

use pascalr_calculus::{
    extend_ranges, sink_variable, standardize, ExtendOptions, Quantifier, Selection,
    StandardizedSelection,
};
use pascalr_catalog::Catalog;
use pascalr_optimizer::{CostWeights, SemijoinInfo, StatsView};
use pascalr_relation::CompareOp;

use crate::auto::{features_of, plan_auto};
use crate::plan::{DyadicLink, PlanEstimates, QueryPlan, SemijoinStep, ValueListMode};
use crate::strategy::StrategyLevel;

/// Options controlling planning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanOptions {
    /// Allow disjunctive restrictions in extended ranges (the paper's
    /// "conjunctive normal form" future-work mode; ablated in E7).
    pub disjunctive_range_extensions: bool,
    /// Disable the cardinality-based scan ordering (ablation for E6): scan
    /// relations in declaration order instead.
    pub declaration_scan_order: bool,
    /// Apply the prepare-time semantic rewrites of `pascalr-analysis`
    /// before planning: statically unsatisfiable terms become `false`,
    /// domain tautologies become `true`, contradictory conjunctions
    /// collapse, and equality-implied monadic restrictions are appended.
    /// On by default; turn off to plan the selection exactly as written
    /// (ablation, or when diagnostics are unwanted).
    pub semantic_rewrites: bool,
}

impl Default for PlanOptions {
    /// Ablations off, semantic rewrites on.
    fn default() -> Self {
        PlanOptions {
            disjunctive_range_extensions: false,
            declaration_scan_order: false,
            semantic_rewrites: true,
        }
    }
}

/// Chooses the value-list reduction for a single-link step.
fn reduction_for(q: Quantifier, links: &[DyadicLink]) -> ValueListMode {
    if links.len() != 1 {
        return ValueListMode::Full;
    }
    let op = links[0].op;
    match (op, q) {
        // target < SOME bound  ⇔ target < max(bound); target < ALL bound ⇔ < min.
        (CompareOp::Lt | CompareOp::Le, Quantifier::Some) => ValueListMode::MaxOnly,
        (CompareOp::Lt | CompareOp::Le, Quantifier::All) => ValueListMode::MinOnly,
        (CompareOp::Gt | CompareOp::Ge, Quantifier::Some) => ValueListMode::MinOnly,
        (CompareOp::Gt | CompareOp::Ge, Quantifier::All) => ValueListMode::MaxOnly,
        (CompareOp::Eq, Quantifier::All) => ValueListMode::AtMostOne,
        (CompareOp::Ne, Quantifier::Some) => ValueListMode::AtMostOne,
        _ => ValueListMode::Full,
    }
}

/// Derives the Strategy 4 semijoin steps, mutating `prepared` (prefix entries
/// removed, conjunction terms consumed) and returning the steps plus the
/// per-conjunction derived-predicate assignment.
fn derive_semijoin_steps(
    prepared: &mut StandardizedSelection,
    notes: &mut Vec<String>,
) -> (Vec<SemijoinStep>, Vec<Vec<usize>>) {
    let mut steps: Vec<SemijoinStep> = Vec::new();
    let mut derived: Vec<Vec<usize>> = vec![Vec::new(); prepared.form.matrix.len()];

    loop {
        if prepared.form.prefix.is_empty() {
            break;
        }
        let mut applied = false;

        // Examine candidates from innermost to outermost.
        let order: Vec<usize> = (0..prepared.form.prefix.len()).rev().collect();
        for idx in order {
            let entry = prepared.form.prefix[idx].clone();
            let var = entry.var.clone();

            // Conjunctions involving the variable, either through join terms
            // or through a pending derived predicate.
            let mut involved: Vec<usize> = prepared.form.conjunctions_mentioning(&var);
            for (ci, preds) in derived.iter().enumerate() {
                if preds
                    .iter()
                    .any(|&s| steps[s].target_var.as_ref() == var.as_ref())
                    && !involved.contains(&ci)
                {
                    involved.push(ci);
                }
            }
            involved.sort_unstable();

            if involved.is_empty() {
                // The variable occurs nowhere: under the non-emptiness
                // assumption its quantifier is vacuous and it can be dropped.
                prepared.form.prefix.remove(idx);
                notes.push(format!(
                    "dropped quantified variable {var}: it occurs in no join term"
                ));
                applied = true;
                break;
            }
            if involved.len() != 1 {
                // For ALL this split is not permitted (Lemma 1); for SOME it
                // would require duplicating the variable per conjunction —
                // the current planner keeps the quantifier in the
                // combination phase instead.
                continue;
            }
            let ci = involved[0];

            // The variable must be movable to the innermost position.
            let Ok((sunk, pos)) = sink_variable(prepared, &var) else {
                continue;
            };
            if pos + 1 != sunk.form.prefix.len() {
                continue;
            }

            // All dyadic terms over the variable in this conjunction must
            // link it to exactly one other variable.
            let conj = &sunk.form.matrix[ci];
            let dyadics: Vec<_> = conj.dyadic_terms_over(&var).into_iter().cloned().collect();
            if dyadics.is_empty() {
                continue;
            }
            let mut links = Vec::new();
            let mut target: Option<pascalr_calculus::VarName> = None;
            let mut consistent = true;
            for t in &dyadics {
                let Some((bound_attr, op, other, other_attr)) = t.as_dyadic_over(&var) else {
                    consistent = false;
                    break;
                };
                match &target {
                    None => target = Some(other.clone()),
                    Some(existing) if existing.as_ref() == other.as_ref() => {}
                    Some(_) => {
                        consistent = false;
                        break;
                    }
                }
                // Orient the link from the target's perspective:
                // bound.bound_attr OP target.other_attr  ⇔
                // target.other_attr OP.flip() bound.bound_attr.
                links.push(DyadicLink {
                    target_attr: other_attr,
                    op: op.flip(),
                    bound_attr,
                });
            }
            let Some(target_var) = target else {
                continue;
            };
            if !consistent {
                continue;
            }

            // Adopt the sunk prefix order, then peel the variable.
            *prepared = sunk;
            let Some(innermost) = prepared.form.prefix.pop() else {
                // `sink_variable` placed the variable at `pos + 1 ==
                // prefix.len()`, so the prefix cannot be empty here.
                continue;
            };
            debug_assert_eq!(innermost.var.as_ref(), var.as_ref());

            // Monadic filters over the variable in this conjunction move into
            // the value-list construction; all terms over the variable leave
            // the matrix.
            let monadic_filters: Vec<_> = prepared.form.matrix[ci]
                .monadic_terms_over(&var)
                .into_iter()
                .cloned()
                .collect();
            prepared.form.matrix[ci].terms.retain(|t| !t.mentions(&var));

            // Earlier derived predicates targeting this variable in the same
            // conjunction are consumed by the value-list construction.
            let consumes: Vec<usize> = derived[ci]
                .iter()
                .copied()
                .filter(|&s| steps[s].target_var.as_ref() == var.as_ref())
                .collect();
            derived[ci].retain(|s| !consumes.contains(s));

            let reduction = reduction_for(innermost.q, &links);
            let step = SemijoinStep {
                quantifier: innermost.q,
                bound_var: var.clone(),
                range: innermost.range.clone(),
                monadic_filters,
                links,
                target_var: target_var.clone(),
                conjunction: ci,
                consumes,
                reduction,
                produces: format!("sl_{target_var}_via_{var}"),
            };
            notes.push(format!(
                "strategy 4: {} {} evaluated in the collection phase ({})",
                step.quantifier,
                var,
                step.reduction.label()
            ));
            let step_idx = steps.len();
            steps.push(step);
            derived[ci].push(step_idx);
            applied = true;
            break;
        }

        if !applied {
            break;
        }
    }

    (steps, derived)
}

/// Drops prefix variables that occur in no conjunction (vacuous under the
/// standard form's non-emptiness assumption).
fn drop_vacuous_prefix_vars(
    prepared: &mut StandardizedSelection,
) -> Vec<pascalr_calculus::VarName> {
    let mut dropped = Vec::new();
    prepared.form.prefix.retain(|entry| {
        let occurs = prepared.form.matrix.iter().any(|c| c.mentions(&entry.var));
        if !occurs {
            dropped.push(entry.var.clone());
        }
        occurs
    });
    dropped
}

/// Chooses the scan order of the base relations for the parallel collection
/// phase: ascending *estimated effective* cardinality (live cardinality
/// times the statistics-based selectivity of the range restriction, if
/// any), so that indexes on small candidate sets exist before large
/// relations are scanned and probed against them.
///
/// The base cardinality deliberately comes from the live relation, not
/// from the (possibly stale) ANALYZE snapshot: fixed-level plans are cache
/// keyed only on the plan epoch, so their scan order must never bake in an
/// analyzed cardinality that a later ANALYZE could silently fail to
/// refresh.  ANALYZE statistics contribute only the restriction
/// *selectivity* refinement, which is a fraction and ordering-advisory.
/// Relations the catalog does not know sort last; the stable sort keeps
/// declaration order among ties.
fn choose_scan_order(
    prepared: &StandardizedSelection,
    steps: &[SemijoinStep],
    catalog: &Catalog,
    stats: &StatsView,
    declaration_order: bool,
) -> Vec<pascalr_calculus::RelName> {
    let mut relations: Vec<(pascalr_calculus::RelName, f64)> = Vec::new();
    let mut push = |name: &pascalr_calculus::RelName, rows: f64| {
        match relations
            .iter_mut()
            .find(|(r, _)| r.as_ref() == name.as_ref())
        {
            // A relation scanned for several variables builds its index
            // for the most restricted one first.
            Some((_, est)) => *est = est.min(rows),
            None => relations.push((name.clone(), rows)),
        }
    };
    let estimate = |range: &pascalr_calculus::RangeExpr, var: &str| -> f64 {
        let Ok(rel) = catalog.relation(&range.relation) else {
            return f64::INFINITY;
        };
        let live = rel.cardinality() as f64;
        match &range.restriction {
            Some(f) => {
                live * pascalr_optimizer::restriction_selectivity(f, var, &range.relation, stats)
            }
            None => live,
        }
    };
    for d in &prepared.free {
        push(&d.range.relation, estimate(&d.range, &d.var));
    }
    for p in &prepared.form.prefix {
        push(&p.range.relation, estimate(&p.range, &p.var));
    }
    for s in steps {
        push(&s.range.relation, estimate(&s.range, &s.bound_var));
    }
    if !declaration_order {
        relations.sort_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    }
    relations.into_iter().map(|(r, _)| r).collect()
}

/// Names of the permanent catalog indexes the plan's execution will rely
/// on: indexes serving a restricted range by probe (the index-backed
/// range path exists from Strategy 1 up — the baseline stays deliberately
/// naive), and indexes covering the *probed* side of an equality join
/// term — the side assembled later by the combination phase, whose
/// indirect join the executor then skips.  Both decisions go through the
/// shared `pascalr_optimizer::access` helpers so planner, cost model and
/// executor agree.
fn indexes_relied_on(
    prepared: &StandardizedSelection,
    steps: &[SemijoinStep],
    derived_predicates: &[Vec<usize>],
    strategy: StrategyLevel,
    catalog: &Catalog,
) -> Vec<String> {
    let mut used: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let decls: Vec<&pascalr_catalog::IndexDecl> = catalog.indexes().collect();

    if strategy.parallel_scans() {
        let mut serve_range = |var: &str, range: &pascalr_calculus::RangeExpr| {
            // The executor probes the *first* covering declaration
            // (`range_probe_key`); name exactly that one.
            if let Some(decl) =
                pascalr_optimizer::covering_range_indexes(decls.iter().copied(), range, var)
                    .into_iter()
                    .next()
            {
                used.insert(decl.name.clone());
            }
        };
        for d in &prepared.free {
            serve_range(&d.var, &d.range);
        }
        for p in &prepared.form.prefix {
            serve_range(&p.var, &p.range);
        }
        for s in steps {
            serve_range(&s.bound_var, &s.range);
        }
    }

    let all_vars = prepared.all_vars();
    for (ci, conj) in prepared.form.matrix.iter().enumerate() {
        let order = pascalr_optimizer::assembly_order(conj, &all_vars, |v| {
            conj.mentions(v)
                || derived_predicates
                    .get(ci)
                    .is_some_and(|preds| preds.iter().any(|&s| steps[s].target_var.as_ref() == v))
        });
        for term in conj.terms.iter().filter(|t| t.is_dyadic()) {
            let tvars: Vec<pascalr_calculus::VarName> = term.vars().into_iter().collect();
            if tvars.len() != 2 {
                continue;
            }
            let Some((a_attr, op, _, b_attr)) = term.as_dyadic_over(&tvars[0]) else {
                continue;
            };
            if op != CompareOp::Eq {
                continue;
            }
            let pos_a = order.iter().position(|v| v.as_ref() == tvars[0].as_ref());
            let pos_b = order.iter().position(|v| v.as_ref() == tvars[1].as_ref());
            let (probed_var, probed_attr) = if pos_a > pos_b {
                (&tvars[0], a_attr)
            } else {
                (&tvars[1], b_attr)
            };
            let Some(range) = prepared.range_of(probed_var) else {
                continue;
            };
            for decl in &decls {
                if decl.covers(range.relation.as_ref(), &[probed_attr.as_ref()]) {
                    used.insert(decl.name.clone());
                }
            }
        }
    }

    used.into_iter().collect()
}

/// Builds the query plan for a selection at a strategy level.
///
/// [`StrategyLevel::Auto`] runs the cost model over all five fixed levels
/// (using the catalog's ANALYZE statistics where available) and returns the
/// cheapest candidate; the produced plan records the chosen fixed level in
/// [`QueryPlan::strategy`] and the selection rationale in its estimates and
/// notes.
pub fn plan(
    selection: &Selection,
    catalog: &Catalog,
    strategy: StrategyLevel,
    options: PlanOptions,
) -> QueryPlan {
    let _span = pascalr_obs::span!("plan", strategy = strategy.short_name());
    let stats = StatsView::from_catalog(catalog);

    // Prepare-time semantic analysis: plan the *simplified* selection (the
    // rewrites are equivalence-preserving given the catalog's domain
    // declarations) and carry the rendered diagnostics on the plan.  The
    // plan keeps the user's original selection in `original` — the
    // simplification is a planning decision, not a reinterpretation.
    let (effective, warnings) = if options.semantic_rewrites {
        let simplified = pascalr_analysis::simplify(selection, catalog);
        let warnings = simplified
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect();
        (simplified.selection, warnings)
    } else {
        (selection.clone(), Vec::new())
    };

    let mut plan = if strategy.is_auto() {
        plan_auto(&effective, catalog, options, &stats)
    } else {
        plan_fixed(&effective, catalog, strategy, options, &stats)
    };
    plan.original = selection.clone();
    plan.warnings = warnings;

    #[cfg(debug_assertions)]
    if let Err(violations) = crate::verify::verify_plan(&plan, catalog) {
        panic!(
            "plan verifier rejected the plan for '{}':\n  {}",
            plan.original.target,
            violations.join("\n  ")
        );
    }
    plan
}

/// Builds the plan for one *fixed* strategy level against a prepared
/// statistics view, attaching the cost-model estimates.
pub(crate) fn plan_fixed(
    selection: &Selection,
    catalog: &Catalog,
    strategy: StrategyLevel,
    options: PlanOptions,
    stats: &StatsView,
) -> QueryPlan {
    debug_assert!(!strategy.is_auto(), "Auto must go through plan()");
    let mut notes = Vec::new();
    let mut prepared = standardize(selection);

    let extend_report = if strategy.extended_ranges() {
        let (extended, report) = extend_ranges(
            &prepared,
            ExtendOptions {
                allow_disjunctive: options.disjunctive_range_extensions,
            },
        );
        prepared = extended;
        if report.changed() {
            notes.push(format!(
                "strategy 3: {} monadic hoist(s), {} conjunction(s) removed",
                report.hoists.len(),
                report.removed_conjunctions
            ));
        }
        Some(report)
    } else {
        None
    };

    let dropped_vars = drop_vacuous_prefix_vars(&mut prepared);

    let (semijoin_steps, derived_predicates) = if strategy.collection_quantifiers() {
        derive_semijoin_steps(&mut prepared, &mut notes)
    } else {
        (Vec::new(), vec![Vec::new(); prepared.form.matrix.len()])
    };

    let scan_order = choose_scan_order(
        &prepared,
        &semijoin_steps,
        catalog,
        stats,
        options.declaration_scan_order,
    );

    // Cost-model prediction for this candidate shape: per-conjunction
    // cardinalities plus the paper's observable cost counters.
    let steps_info: Vec<SemijoinInfo> = semijoin_steps
        .iter()
        .map(|s| SemijoinInfo {
            quantifier: s.quantifier,
            bound_var: s.bound_var.clone(),
            range: s.range.clone(),
            monadic_filters: s.monadic_filters.clone(),
            links: s.links.len(),
            target_var: s.target_var.clone(),
            conjunction: s.conjunction,
        })
        .collect();
    let prediction =
        pascalr_optimizer::estimate_plan(&prepared, &steps_info, features_of(strategy), stats);
    let estimates = Some(PlanEstimates {
        per_conjunction: prediction.per_conjunction,
        result_rows: prediction.result_rows,
        cost: prediction.cost,
        total_cost: prediction.cost.total(&CostWeights::default()),
        candidate_costs: Vec::new(),
        auto_selected: false,
    });

    let used_indexes = indexes_relied_on(
        &prepared,
        &semijoin_steps,
        &derived_predicates,
        strategy,
        catalog,
    );

    QueryPlan {
        strategy,
        original: selection.clone(),
        prepared,
        extend_report,
        semijoin_steps,
        derived_predicates,
        scan_order,
        dropped_vars,
        notes,
        warnings: Vec::new(),
        used_indexes,
        row_budget: None,
        estimates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pascalr_parser::paper::EXAMPLE_2_1_QUERY;
    use pascalr_parser::parse_selection;
    use pascalr_workload::figure1_sample_database;

    fn example_plan(strategy: StrategyLevel) -> QueryPlan {
        let cat = figure1_sample_database().unwrap();
        let sel = parse_selection(EXAMPLE_2_1_QUERY, &cat).unwrap();
        plan(&sel, &cat, strategy, PlanOptions::default())
    }

    #[test]
    fn baseline_plan_keeps_the_full_prefix_and_matrix() {
        let p = example_plan(StrategyLevel::S0Baseline);
        assert_eq!(p.prepared.form.prefix.len(), 3);
        assert_eq!(p.prepared.form.conjunction_count(), 3);
        assert!(p.semijoin_steps.is_empty());
        assert!(p.extend_report.is_none());
        assert_eq!(p.scan_order.len(), 4);
        assert!(!p.explain().is_empty());
    }

    #[test]
    fn s3_plan_extends_ranges_and_removes_a_conjunction() {
        let p = example_plan(StrategyLevel::S3ExtendedRanges);
        assert_eq!(p.prepared.form.conjunction_count(), 2);
        let report = p.extend_report.as_ref().unwrap();
        assert!(report.changed());
        assert_eq!(report.removed_conjunctions, 1);
        assert!(p.prepared.range_of("e").unwrap().is_restricted());
        assert!(p.prepared.range_of("p").unwrap().is_restricted());
        assert!(p.prepared.range_of("c").unwrap().is_restricted());
        assert!(p.semijoin_steps.is_empty());
    }

    #[test]
    fn s4_plan_matches_example_4_7_structure() {
        // After Strategy 3 + Strategy 4 the whole quantifier prefix is
        // evaluated in the collection phase: cset (c), tset (t), pset (p),
        // exactly as in Example 4.7.
        let p = example_plan(StrategyLevel::S4CollectionQuantifiers);
        assert!(p.prepared.form.prefix.is_empty(), "{}", p.explain());
        assert_eq!(p.semijoin_steps.len(), 3);
        let order: Vec<&str> = p
            .semijoin_steps
            .iter()
            .map(|s| s.bound_var.as_ref())
            .collect();
        assert_eq!(order, vec!["c", "t", "p"]);
        // c and t produce predicates targeting t and e respectively; p
        // targets e.
        assert_eq!(p.semijoin_steps[0].target_var.as_ref(), "t");
        assert_eq!(p.semijoin_steps[1].target_var.as_ref(), "e");
        assert_eq!(p.semijoin_steps[2].target_var.as_ref(), "e");
        // The t-step consumes the c-step's derived predicate.
        assert_eq!(p.semijoin_steps[1].consumes, vec![0]);
        // Equality links keep the full value list; the ALL/<> pset is also a
        // full list (the special cases do not apply).
        assert_eq!(p.semijoin_steps[0].reduction, ValueListMode::Full);
        assert_eq!(p.semijoin_steps[2].reduction, ValueListMode::Full);
        // Every conjunction's remaining work is a derived predicate on the
        // free variable e.
        for preds in &p.derived_predicates {
            assert!(!preds.is_empty());
            for &s in preds {
                assert_eq!(p.semijoin_steps[s].target_var.as_ref(), "e");
            }
        }
        // All matrix terms were consumed by the steps.
        assert_eq!(p.prepared.form.term_count(), 0);
    }

    #[test]
    fn streamability_and_row_budget_are_exposed_on_the_plan() {
        // With a quantifier prefix the combination output must be
        // materialized; once Strategy 4 evaluates the whole prefix in the
        // collection phase, it can be consumed in streaming order.
        let p0 = example_plan(StrategyLevel::S0Baseline);
        assert!(!p0.combination_streams());
        assert!(p0
            .explain()
            .contains("combination output: materialized (quantifier passes required)"));
        let p4 = example_plan(StrategyLevel::S4CollectionQuantifiers);
        assert!(p4.combination_streams());
        assert!(p4
            .explain()
            .contains("combination output: streaming (empty quantifier prefix)"));

        // The row-budget hint defaults to unbounded, survives parameter
        // binding, and shows up in explain output.
        assert_eq!(p4.row_budget, None);
        let budgeted = p4.with_row_budget(10);
        assert_eq!(budgeted.row_budget, Some(10));
        assert!(budgeted
            .explain()
            .contains("row budget: at most 10 tuple(s)"));
        let bound = budgeted
            .bind_params(&pascalr_calculus::Params::new())
            .unwrap();
        assert_eq!(bound.row_budget, Some(10));

        // A quantifier-free selection streams at every level.
        let cat = figure1_sample_database().unwrap();
        let sel = parse_selection(
            "profs := [<e.ename> OF EACH e IN employees: e.estatus = professor]",
            &cat,
        )
        .unwrap();
        for level in StrategyLevel::ALL {
            assert!(plan(&sel, &cat, level, PlanOptions::default()).combination_streams());
        }
    }

    #[test]
    fn s4_reductions_for_comparison_special_cases() {
        let cat = figure1_sample_database().unwrap();
        // SOME q (p.pyear < q.pyear): keep only the maximum of q.pyear.
        let sel = parse_selection(
            "notnewest := [<p.ptitle> OF EACH p IN papers: SOME q IN papers (p.pyear < q.pyear)]",
            &cat,
        )
        .unwrap();
        let pl = plan(
            &sel,
            &cat,
            StrategyLevel::S4CollectionQuantifiers,
            PlanOptions::default(),
        );
        assert_eq!(pl.semijoin_steps.len(), 1);
        assert_eq!(pl.semijoin_steps[0].reduction, ValueListMode::MaxOnly);

        // ALL q (p.pyear <= q.pyear): keep only the minimum.
        let sel = parse_selection(
            "oldest := [<p.ptitle> OF EACH p IN papers: ALL q IN papers (p.pyear <= q.pyear)]",
            &cat,
        )
        .unwrap();
        let pl = plan(
            &sel,
            &cat,
            StrategyLevel::S4CollectionQuantifiers,
            PlanOptions::default(),
        );
        assert_eq!(pl.semijoin_steps[0].reduction, ValueListMode::MinOnly);

        // ALL t (e.enr = t.tenr): at most one value.
        let sel = parse_selection(
            "q := [<e.ename> OF EACH e IN employees: ALL t IN timetable (e.enr = t.tenr)]",
            &cat,
        )
        .unwrap();
        let pl = plan(
            &sel,
            &cat,
            StrategyLevel::S4CollectionQuantifiers,
            PlanOptions::default(),
        );
        assert_eq!(pl.semijoin_steps[0].reduction, ValueListMode::AtMostOne);

        // SOME t (e.enr <> t.tenr): at most one value.
        let sel = parse_selection(
            "q := [<e.ename> OF EACH e IN employees: SOME t IN timetable (e.enr <> t.tenr)]",
            &cat,
        )
        .unwrap();
        let pl = plan(
            &sel,
            &cat,
            StrategyLevel::S4CollectionQuantifiers,
            PlanOptions::default(),
        );
        assert_eq!(pl.semijoin_steps[0].reduction, ValueListMode::AtMostOne);
    }

    #[test]
    fn scan_order_prefers_small_relations_first() {
        let p = example_plan(StrategyLevel::S1Parallel);
        // Sample database cardinalities: courses 4 < papers 5 < employees 6 = timetable 6.
        let order: Vec<&str> = p
            .scan_order
            .iter()
            .map(std::convert::AsRef::as_ref)
            .collect();
        assert_eq!(order[0], "courses");
        assert_eq!(order[1], "papers");
        assert_eq!(order.len(), 4);

        // Ablation: declaration order instead.
        let cat = figure1_sample_database().unwrap();
        let sel = parse_selection(EXAMPLE_2_1_QUERY, &cat).unwrap();
        let p2 = plan(
            &sel,
            &cat,
            StrategyLevel::S1Parallel,
            PlanOptions {
                declaration_scan_order: true,
                ..Default::default()
            },
        );
        assert_eq!(p2.scan_order[0].as_ref(), "employees");
    }

    #[test]
    fn vacuous_quantifiers_are_dropped() {
        let cat = figure1_sample_database().unwrap();
        let sel = parse_selection(
            "q := [<e.ename> OF EACH e IN employees: \
               SOME t IN timetable (e.estatus = professor)]",
            &cat,
        )
        .unwrap();
        let pl = plan(&sel, &cat, StrategyLevel::S2OneStep, PlanOptions::default());
        assert!(pl.prepared.form.prefix.is_empty());
        assert_eq!(pl.dropped_vars.len(), 1);
        assert_eq!(pl.dropped_vars[0].as_ref(), "t");
    }

    #[test]
    fn explain_mentions_strategies_and_structures() {
        let p = example_plan(StrategyLevel::S4CollectionQuantifiers);
        let text = p.explain();
        assert!(text.contains("S4"));
        assert!(text.contains("collection-phase quantifier steps"));
        assert!(text.contains("scan order"));
        let names = p.structure_names();
        assert!(names.iter().any(|n| n.starts_with("sl_")));
    }

    #[test]
    fn s4_does_not_apply_to_multi_target_variables() {
        let cat = figure1_sample_database().unwrap();
        // t is linked to both e and c in the same conjunction: the innermost
        // variable cannot be peeled first, but c can, after which t becomes
        // eligible; verify the planner handles the chain and terminates.
        let sel = parse_selection(
            "q := [<e.ename> OF EACH e IN employees: \
               SOME t IN timetable SOME c IN courses \
                 ((t.tenr = e.enr) AND (t.tcnr = c.cnr) AND (c.clevel <= sophomore))]",
            &cat,
        )
        .unwrap();
        let pl = plan(
            &sel,
            &cat,
            StrategyLevel::S4CollectionQuantifiers,
            PlanOptions::default(),
        );
        assert_eq!(pl.semijoin_steps.len(), 2);
        assert_eq!(pl.semijoin_steps[0].bound_var.as_ref(), "c");
        assert_eq!(pl.semijoin_steps[1].bound_var.as_ref(), "t");
        assert!(pl.prepared.form.prefix.is_empty());
        // The sophomore test was hoisted into c's range by Strategy 3 (which
        // S4 includes), so it constrains the value list via the range rather
        // than via a monadic filter.
        assert!(pl.semijoin_steps[0].range.is_restricted());
        assert!(pl.semijoin_steps[0].monadic_filters.is_empty());
    }

    #[test]
    fn parameterized_plans_match_inlined_plans_after_binding() {
        let cat = figure1_sample_database().unwrap();
        let with_param = parse_selection(
            "q := [<e.ename> OF EACH e IN employees: \
               SOME p IN papers ((p.penr = e.enr) AND (p.pyear = :year)) \
               AND (e.estatus = professor)]",
            &cat,
        )
        .unwrap();
        let inlined = parse_selection(
            "q := [<e.ename> OF EACH e IN employees: \
               SOME p IN papers ((p.penr = e.enr) AND (p.pyear = 1977)) \
               AND (e.estatus = professor)]",
            &cat,
        )
        .unwrap();
        for level in StrategyLevel::ALL {
            let p_param = plan(&with_param, &cat, level, PlanOptions::default());
            let p_inline = plan(&inlined, &cat, level, PlanOptions::default());
            // Same shape while unbound: same prefix, matrix and steps.
            assert_eq!(
                p_param.prepared.form.prefix.len(),
                p_inline.prepared.form.prefix.len(),
                "{level}"
            );
            assert_eq!(
                p_param.semijoin_steps.len(),
                p_inline.semijoin_steps.len(),
                "{level}"
            );
            assert_eq!(p_param.scan_order, p_inline.scan_order, "{level}");
            // Binding the placeholder yields the *identical* plan.
            let params = pascalr_calculus::Params::new().set("year", 1977i64);
            assert_eq!(p_param.param_names().len(), 1);
            let bound = p_param.bind_params(&params).unwrap();
            assert!(bound.param_names().is_empty());
            assert_eq!(bound, p_inline, "{level}");
        }
        // Missing bindings are reported.
        let p = plan(
            &with_param,
            &cat,
            StrategyLevel::S4CollectionQuantifiers,
            PlanOptions::default(),
        );
        assert!(p.bind_params(&pascalr_calculus::Params::new()).is_err());
    }

    #[test]
    fn plans_exist_for_every_workload_query_and_level() {
        let cat = figure1_sample_database().unwrap();
        for q in pascalr_workload::all_queries() {
            let sel = q.parse(&cat).unwrap();
            for level in StrategyLevel::ALL {
                let p = plan(&sel, &cat, level, PlanOptions::default());
                assert!(
                    !p.scan_order.is_empty(),
                    "query {} at {level} produced an empty scan order",
                    q.id
                );
                // derived predicate table always matches the matrix length
                assert_eq!(
                    p.derived_predicates.len(),
                    p.prepared.form.matrix.len().max(p.derived_predicates.len())
                );
            }
        }
    }
}
