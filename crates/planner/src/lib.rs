//! `pascalr-planner`: query plans and the four PASCAL/R optimization
//! strategies (parallel evaluation, one-step nested subexpressions, extended
//! range expressions, collection-phase quantifier evaluation) on top of the
//! naive Palermo-style baseline — plus [`StrategyLevel::Auto`], the
//! cost-based selection policy that picks among them using the catalog's
//! ANALYZE statistics and the `pascalr-optimizer` cost model.  Planning
//! reads statistics and index declarations through whatever `&Catalog` the
//! caller passes — in the full system that is a pinned immutable snapshot,
//! so a plan is always costed against one consistent catalog version.

#![forbid(unsafe_code)]

pub mod auto;
pub mod plan;
pub mod planner;
pub mod strategy;
pub mod verify;

pub use pascalr_optimizer::{ConjunctionEstimate, CostEstimate, CostWeights};
pub use plan::{DyadicLink, PlanEstimates, QueryPlan, SemijoinStep, ValueListMode};
pub use planner::{plan, PlanOptions};
pub use strategy::StrategyLevel;
pub use verify::verify_plan;
