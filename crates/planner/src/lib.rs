//! `pascalr-planner`: query plans and the four PASCAL/R optimization
//! strategies (parallel evaluation, one-step nested subexpressions, extended
//! range expressions, collection-phase quantifier evaluation) on top of the
//! naive Palermo-style baseline.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod plan;
pub mod planner;
pub mod strategy;

pub use plan::{DyadicLink, QueryPlan, SemijoinStep, ValueListMode};
pub use planner::{plan, PlanOptions};
pub use strategy::StrategyLevel;
