//! Query plan representation.
//!
//! A [`QueryPlan`] is the output of the planner: the (possibly transformed)
//! standardized selection, the collection-phase quantifier steps of
//! Strategy 4, the relation scan order for the parallel collection phase of
//! Strategy 1, and bookkeeping for the runtime assumptions that may require
//! falling back to an adapted plan (empty range relations, empty extended
//! ranges).

use pascalr_sync::Arc;
use std::fmt;

use pascalr_calculus::{
    CalculusError, ExtendReport, ParamName, Params, Quantifier, RangeExpr, RelName, Selection,
    StandardizedSelection, Term, VarName,
};
use pascalr_optimizer::{ConjunctionEstimate, CostEstimate};
use serde::{Deserialize, Serialize};

use crate::strategy::StrategyLevel;

/// Cost-model output attached to a plan: per-conjunction cardinality
/// estimates, the predicted cost counters, and — for plans produced by
/// [`StrategyLevel::Auto`] — the per-level candidate cost table.
///
/// Estimates are *advisory*: they never change which tuples qualify, only
/// which plan shape is chosen, and they are excluded from plan equality
/// (two plans differing only in their estimates are interchangeable).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanEstimates {
    /// Estimated reference-row output of each conjunction of the prepared
    /// matrix (index-aligned; compare with the `refrel_c<i>` structure
    /// sizes the executor records).
    pub per_conjunction: Vec<ConjunctionEstimate>,
    /// Estimated number of result tuples (compare with the `result`
    /// structure size).
    pub result_rows: f64,
    /// Predicted cost counters for this plan.
    pub cost: CostEstimate,
    /// The weighted scalar cost the optimizer minimized.
    pub total_cost: f64,
    /// For Auto-selected plans: the weighted cost of every candidate fixed
    /// level, in [`StrategyLevel::ALL`] order.  Empty otherwise.
    pub candidate_costs: Vec<(StrategyLevel, f64)>,
    /// Whether this plan was chosen by [`StrategyLevel::Auto`].
    pub auto_selected: bool,
}

/// How the value list of a collection-phase quantifier step is reduced
/// (Section 4.4's special cases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValueListMode {
    /// The full value list is kept.
    Full,
    /// Only the maximum value is kept (`<`/`<=` joined with `SOME`, or
    /// `>`/`>=` joined with `ALL`).
    MaxOnly,
    /// Only the minimum value is kept (`<`/`<=` joined with `ALL`, or
    /// `>`/`>=` joined with `SOME`).
    MinOnly,
    /// At most one value needs to be kept (`=` with `ALL`, `<>` with
    /// `SOME`).
    AtMostOne,
}

impl ValueListMode {
    /// Human-readable label used in explain output.
    pub fn label(self) -> &'static str {
        match self {
            ValueListMode::Full => "full value list",
            ValueListMode::MaxOnly => "maximum value only",
            ValueListMode::MinOnly => "minimum value only",
            ValueListMode::AtMostOne => "at most one value",
        }
    }
}

/// A dyadic link between the target variable and the bound (quantified)
/// variable of a semijoin step: `target.target_attr OP bound.bound_attr`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DyadicLink {
    /// Component of the target (outer) variable.
    pub target_attr: Arc<str>,
    /// Comparison operator, oriented from the target's side.
    pub op: pascalr_relation::CompareOp,
    /// Component of the bound (quantified) variable.
    pub bound_attr: Arc<str>,
}

impl fmt::Display for DyadicLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "target.{} {} bound.{}",
            self.target_attr, self.op, self.bound_attr
        )
    }
}

/// A Strategy 4 step: evaluate the quantifier of `bound_var` during the
/// collection phase using a value list, producing a derived predicate on
/// `target_var` (the paper's `cset`/`tset`/`pset` constructions of
/// Example 4.7).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SemijoinStep {
    /// The quantifier being evaluated early.
    pub quantifier: Quantifier,
    /// The quantified variable removed from the prefix.
    pub bound_var: VarName,
    /// Its range (possibly an extended range).
    pub range: RangeExpr,
    /// Monadic terms over the bound variable taken from the conjunction;
    /// they filter the value list.
    pub monadic_filters: Vec<Term>,
    /// The dyadic links connecting the bound variable to the target
    /// variable.
    pub links: Vec<DyadicLink>,
    /// The single other variable the bound variable is connected to.
    pub target_var: VarName,
    /// Index of the conjunction the terms were taken from.
    pub conjunction: usize,
    /// Indices (into the plan's step list) of earlier steps whose derived
    /// predicate targets `bound_var` in the same conjunction; they filter the
    /// value list (the paper's `tset` is built using `cset`).
    pub consumes: Vec<usize>,
    /// The value-list reduction that applies.
    pub reduction: ValueListMode,
    /// Display name of the produced structure, e.g. `vl_c` / `sl_t_via_c`.
    pub produces: String,
}

impl fmt::Display for SemijoinStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} IN {} -> predicate on {} ({}; conjunction #{})",
            self.quantifier,
            self.bound_var,
            self.range.display_for(&self.bound_var),
            self.target_var,
            self.reduction.label(),
            self.conjunction + 1
        )
    }
}

/// The complete plan for one selection at one strategy level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryPlan {
    /// The strategy level the plan was built for.  Plans requested at
    /// [`StrategyLevel::Auto`] record the *chosen* fixed level here (the
    /// selection rationale lives in [`QueryPlan::estimates`] and
    /// [`QueryPlan::notes`]).
    pub strategy: StrategyLevel,
    /// The original selection as written by the user.
    pub original: Selection,
    /// The standardized (and, at S3+, range-extended; at S4, semijoin-
    /// reduced) selection the executor evaluates.
    pub prepared: StandardizedSelection,
    /// Report of the Strategy 3 transformation, if it ran.
    pub extend_report: Option<ExtendReport>,
    /// Strategy 4 steps, in execution order.
    pub semijoin_steps: Vec<SemijoinStep>,
    /// For every conjunction of the prepared matrix, the indices of
    /// semijoin steps whose derived predicate must be applied in that
    /// conjunction during the combination phase.
    pub derived_predicates: Vec<Vec<usize>>,
    /// Base relations in the order the parallel collection phase scans them
    /// (Strategy 1+).  For the baseline this is informational only.
    pub scan_order: Vec<RelName>,
    /// Prefix variables that were dropped because they occur in no
    /// conjunction (valid under the standard form's non-emptiness
    /// assumption).
    pub dropped_vars: Vec<VarName>,
    /// Free-form notes accumulated during planning (shown by `explain`).
    pub notes: Vec<String>,
    /// Rendered semantic diagnostics from the prepare-time analyzer
    /// (`pascalr-analysis`), shown by [`QueryPlan::explain`] as `warning:`
    /// lines.  Advisory only — excluded from plan equality, because a
    /// parameterized plan and its inlined twin render the same diagnostic
    /// with different constant text (`:year` vs `1977`).
    pub warnings: Vec<String>,
    /// Names of the permanent catalog indexes the plan relies on: indexes
    /// that serve a restricted range by probe, or cover the probed side of
    /// an equality join term so that no per-query index is built for it.
    /// Informational (the executor consults the live catalog at run time);
    /// shown by [`QueryPlan::explain`].  The plan epoch advances on every
    /// `create_index`/`drop_index`, so a cached plan's list can never go
    /// stale.
    pub used_indexes: Vec<String>,
    /// Optional hint that the consumer intends to read at most this many
    /// result tuples.  A streaming executor may stop all remaining
    /// combination/construction work once the budget is reached; the hint
    /// never changes *which* tuples qualify, only how many are produced.
    /// `None` (the default) means "produce the full result".
    pub row_budget: Option<u64>,
    /// Cost-model estimates for this plan (per-conjunction cardinalities,
    /// predicted counters, and the Auto candidate table).  Advisory only —
    /// excluded from plan equality.
    pub estimates: Option<PlanEstimates>,
}

impl PartialEq for QueryPlan {
    /// Plans compare on everything that affects execution; the advisory
    /// [`QueryPlan::estimates`] and [`QueryPlan::warnings`] are excluded
    /// (a parameterized plan and its inlined twin carry slightly different
    /// estimates and diagnostic renderings but are the same plan).
    fn eq(&self, other: &Self) -> bool {
        self.strategy == other.strategy
            && self.original == other.original
            && self.prepared == other.prepared
            && self.extend_report == other.extend_report
            && self.semijoin_steps == other.semijoin_steps
            && self.derived_predicates == other.derived_predicates
            && self.scan_order == other.scan_order
            && self.dropped_vars == other.dropped_vars
            && self.notes == other.notes
            && self.used_indexes == other.used_indexes
            && self.row_budget == other.row_budget
    }
}

impl QueryPlan {
    /// Whether the combination output can be consumed in **streaming
    /// order**: once the quantifier prefix of the prepared form is empty
    /// (either because the query has no quantifiers or because Strategy 4
    /// evaluated them all during the collection phase), no projection or
    /// division pass over the full reference relation is needed, so the
    /// union of the per-conjunction reference tuples can be handed to the
    /// construction phase one tuple at a time.  Plans for which this is
    /// `false` must materialize the combination result before the first
    /// output tuple can be produced.
    pub fn combination_streams(&self) -> bool {
        self.prepared.form.prefix.is_empty()
    }

    /// Builder-style setter for the [`QueryPlan::row_budget`] hint.
    pub fn with_row_budget(mut self, budget: u64) -> QueryPlan {
        self.row_budget = Some(budget);
        self
    }

    /// Names of the intermediate structures the plan will build, in the
    /// paper's naming convention (`sl_*`, `ind_*`, `ij_*`, `vl_*`).
    pub fn structure_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for (ci, conj) in self.prepared.form.matrix.iter().enumerate() {
            for t in &conj.terms {
                let tvars: Vec<_> = t.vars().into_iter().collect();
                match tvars.len() {
                    1 => names.push(format!("sl_{}_c{}", tvars[0], ci + 1)),
                    2 => {
                        names.push(format!("ij_{}_{}_c{}", tvars[0], tvars[1], ci + 1));
                        names.push(format!("ind_{}", tvars[1]));
                    }
                    _ => {}
                }
            }
        }
        for step in &self.semijoin_steps {
            names.push(step.produces.clone());
        }
        names.sort();
        names.dedup();
        names
    }

    /// Renders a human-readable explanation of the plan (the `EXPLAIN`
    /// output of the reproduction).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("strategy: {}\n", self.strategy));
        out.push_str("prepared selection:\n");
        out.push_str(&format!("{}\n", self.prepared));
        if let Some(report) = &self.extend_report {
            if report.changed() {
                out.push_str(&format!(
                    "extended ranges: {} hoist(s), {} conjunction(s) removed, {} runtime assumption(s)\n",
                    report.hoists.len(),
                    report.removed_conjunctions,
                    report.assumptions.len()
                ));
            }
        }
        if !self.semijoin_steps.is_empty() {
            out.push_str("collection-phase quantifier steps:\n");
            for (i, s) in self.semijoin_steps.iter().enumerate() {
                out.push_str(&format!("  [{}] {}\n", i + 1, s));
            }
        }
        if !self.dropped_vars.is_empty() {
            let names: Vec<&str> = self
                .dropped_vars
                .iter()
                .map(std::convert::AsRef::as_ref)
                .collect();
            out.push_str(&format!(
                "dropped quantified variables with no join terms: {}\n",
                names.join(", ")
            ));
        }
        out.push_str(&format!(
            "scan order: {}\n",
            self.scan_order
                .iter()
                .map(std::convert::AsRef::as_ref)
                .collect::<Vec<_>>()
                .join(" -> ")
        ));
        if !self.used_indexes.is_empty() {
            out.push_str(&format!(
                "permanent indexes: {}\n",
                self.used_indexes.join(", ")
            ));
        }
        out.push_str(&format!(
            "combination output: {}\n",
            if self.combination_streams() {
                "streaming (empty quantifier prefix)"
            } else {
                "materialized (quantifier passes required)"
            }
        ));
        if let Some(budget) = self.row_budget {
            out.push_str(&format!("row budget: at most {budget} tuple(s)\n"));
        }
        if let Some(est) = &self.estimates {
            for ce in &est.per_conjunction {
                out.push_str(&format!(
                    "estimated rows (conjunction {}): ~{:.1}\n",
                    ce.index + 1,
                    ce.rows
                ));
            }
            out.push_str(&format!(
                "estimated result rows: ~{:.1}; estimated cost: tuples={:.0} comparisons={:.0} \
                 intermediate={:.0} derefs={:.0} (weighted {:.0})\n",
                est.result_rows,
                est.cost.tuples_read,
                est.cost.comparisons,
                est.cost.intermediates,
                est.cost.dereferences,
                est.total_cost,
            ));
            if est.auto_selected {
                let table: Vec<String> = est
                    .candidate_costs
                    .iter()
                    .map(|(level, cost)| format!("{}={:.0}", level.short_name(), cost))
                    .collect();
                out.push_str(&format!(
                    "auto strategy selection: chose {} (candidate costs: {})\n",
                    self.strategy.short_name(),
                    table.join(", ")
                ));
            }
        }
        // Rendered diagnostics carry their own severity prefix
        // (`warning[A005]: ...`, `note[A012]: ...`).
        for warning in &self.warnings {
            out.push_str(&format!("{warning}\n"));
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// The variables still evaluated in the combination phase (free
    /// variables plus the remaining quantifier prefix).
    pub fn combination_vars(&self) -> Vec<VarName> {
        self.prepared.all_vars()
    }

    /// The parameter placeholders the plan still carries (sorted).  A plan
    /// with placeholders must be bound with [`QueryPlan::bind_params`]
    /// before execution.
    pub fn param_names(&self) -> Vec<ParamName> {
        let mut names: std::collections::BTreeSet<ParamName> = self.original.param_names();
        names.extend(self.prepared.param_names());
        for step in &self.semijoin_steps {
            for t in &step.monadic_filters {
                names.extend(t.param_names());
            }
        }
        names.into_iter().collect()
    }

    /// Substitutes concrete values for the plan's parameter placeholders,
    /// producing an executable plan with the *same shape* (prefix, matrix,
    /// semijoin steps and scan order are untouched — only `:name` operands
    /// become constants).  Fails if any placeholder lacks a binding.
    pub fn bind_params(&self, params: &Params) -> Result<QueryPlan, CalculusError> {
        let extend_report = self
            .extend_report
            .as_ref()
            .map(|report| {
                Ok::<_, CalculusError>(ExtendReport {
                    hoists: report
                        .hoists
                        .iter()
                        .map(|h| {
                            Ok(pascalr_calculus::Hoist {
                                var: h.var.clone(),
                                terms: h
                                    .terms
                                    .iter()
                                    .map(|t| t.bind_params(params))
                                    .collect::<Result<_, _>>()?,
                                kind: h.kind,
                            })
                        })
                        .collect::<Result<_, CalculusError>>()?,
                    removed_conjunctions: report.removed_conjunctions,
                    assumptions: report
                        .assumptions
                        .iter()
                        .map(|a| {
                            Ok(pascalr_calculus::ExtendedRangeAssumption {
                                var: a.var.clone(),
                                range: a.range.bind_params(params)?,
                            })
                        })
                        .collect::<Result<_, CalculusError>>()?,
                })
            })
            .transpose()?;
        Ok(QueryPlan {
            strategy: self.strategy,
            original: self.original.bind_params(params)?,
            prepared: self.prepared.bind_params(params)?,
            extend_report,
            semijoin_steps: self
                .semijoin_steps
                .iter()
                .map(|s| {
                    Ok(SemijoinStep {
                        quantifier: s.quantifier,
                        bound_var: s.bound_var.clone(),
                        range: s.range.bind_params(params)?,
                        monadic_filters: s
                            .monadic_filters
                            .iter()
                            .map(|t| t.bind_params(params))
                            .collect::<Result<_, _>>()?,
                        links: s.links.clone(),
                        target_var: s.target_var.clone(),
                        conjunction: s.conjunction,
                        consumes: s.consumes.clone(),
                        reduction: s.reduction,
                        produces: s.produces.clone(),
                    })
                })
                .collect::<Result<_, CalculusError>>()?,
            derived_predicates: self.derived_predicates.clone(),
            scan_order: self.scan_order.clone(),
            dropped_vars: self.dropped_vars.clone(),
            notes: self.notes.clone(),
            warnings: self.warnings.clone(),
            used_indexes: self.used_indexes.clone(),
            row_budget: self.row_budget,
            // Binding substitutes constants without changing the plan
            // shape; the advisory estimates carry over unchanged.
            estimates: self.estimates.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pascalr_relation::CompareOp;

    #[test]
    fn value_list_mode_labels() {
        assert!(ValueListMode::Full.label().contains("full"));
        assert!(ValueListMode::MaxOnly.label().contains("maximum"));
        assert!(ValueListMode::MinOnly.label().contains("minimum"));
        assert!(ValueListMode::AtMostOne.label().contains("one"));
    }

    #[test]
    fn dyadic_link_display() {
        let link = DyadicLink {
            target_attr: Arc::from("enr"),
            op: CompareOp::Ne,
            bound_attr: Arc::from("penr"),
        };
        assert_eq!(link.to_string(), "target.enr <> bound.penr");
    }
}
