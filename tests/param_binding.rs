//! Property-based tests for parameter binding: for random constants,
//! binding them via `:param` on a prepared query must be indistinguishable
//! from inlining them in the query text — same result relation, same plan
//! shape (in fact the bound plan is *identical* to the inlined plan).

use proptest::prelude::*;

use pascalr_repro::pascalr::{Database, Params, PlanOptions, StrategyLevel};
use pascalr_repro::pascalr_workload::figure1_sample_database;

fn sample_db() -> Database {
    Database::from_catalog(figure1_sample_database().unwrap())
}

/// A parameterized query shape: the `:c` text plus a renderer producing the
/// equivalent text with the constant inlined.
type Shape = (&'static str, fn(i64) -> String);

/// The parameterized query shapes under test.
fn shapes() -> Vec<Shape> {
    vec![
        (
            // Existential join with a monadic constant on the quantified
            // variable (S3 hoists it into the range; S4 peels the variable).
            "q := [<e.ename> OF EACH e IN employees: \
               SOME p IN papers ((p.penr = e.enr) AND (p.pyear < :c))]",
            |c| {
                format!(
                    "q := [<e.ename> OF EACH e IN employees: \
                       SOME p IN papers ((p.penr = e.enr) AND (p.pyear < {c}))]"
                )
            },
        ),
        (
            // Universal quantifier; the parameter sits in the ALL branch.
            "q := [<e.ename> OF EACH e IN employees: \
               ALL p IN papers ((p.penr <> e.enr) OR (p.pyear = :c))]",
            |c| {
                format!(
                    "q := [<e.ename> OF EACH e IN employees: \
                       ALL p IN papers ((p.penr <> e.enr) OR (p.pyear = {c}))]"
                )
            },
        ),
        (
            // Monadic test on the free variable (exact hoist candidate).
            "q := [<e.ename> OF EACH e IN employees: \
               (e.enr <= :c) AND SOME t IN timetable (t.tenr = e.enr)]",
            |c| {
                format!(
                    "q := [<e.ename> OF EACH e IN employees: \
                       (e.enr <= {c}) AND SOME t IN timetable (t.tenr = e.enr)]"
                )
            },
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Binding `:c = value` equals inlining `value` in the text: identical
    /// result relation and identical (bound) plan, at every strategy level.
    #[test]
    fn bound_params_equal_inlined_constants(
        value in 1900i64..1999,
        shape in 0usize..3,
        level in 0usize..5,
    ) {
        let db = sample_db();
        let level = StrategyLevel::ALL[level];
        // Semantic rewrites see more from an inlined constant than from an
        // unbound `:c` (e.g. `e.enr <= 1997` folds to `true` under
        // `enumbertype = 1..99`), which would make the inlined plan
        // legitimately simpler than the bound one.  The property under test
        // is parameter binding, so plan them as written.
        let options = PlanOptions {
            semantic_rewrites: false,
            ..PlanOptions::default()
        };
        let session = db.session().with_strategy(level).with_plan_options(options);
        let (param_text, inline_text) = &shapes()[shape];

        let prepared = session.prepare(param_text).unwrap();
        prop_assert_eq!(prepared.param_names().len(), 1);
        let bound = prepared
            .execute_with(&Params::new().set("c", value))
            .unwrap();

        let inlined = session.query(&inline_text(value)).unwrap();

        // Same result relation.
        prop_assert!(
            bound.result.set_eq(&inlined.result),
            "shape {} at {} with c = {}: bound {} rows vs inlined {} rows",
            shape, level, value,
            bound.result.cardinality(),
            inlined.result.cardinality()
        );
        // Same plan, structurally: binding only replaced `:c` by the value.
        prop_assert_eq!(
            &*bound.plan, &*inlined.plan,
            "shape {} at {} with c = {}: plans diverge", shape, level, value
        );
    }

    /// The prepared statement is planned once per shape; executing it with
    /// many distinct constants never re-plans.
    #[test]
    fn distinct_constants_share_one_plan(values in proptest::collection::vec(1900i64..1999, 1..8)) {
        let db = sample_db();
        let session = db.session();
        let (param_text, _) = &shapes()[0];
        let prepared = session.prepare(param_text).unwrap();
        let misses_after_prepare = db.plan_cache_stats().misses;
        for v in values {
            prepared.execute_with(&Params::new().set("c", v)).unwrap();
        }
        prop_assert_eq!(db.plan_cache_stats().misses, misses_after_prepare);
    }
}
