//! Streaming-cursor correctness: for workload queries at every strategy
//! level — on randomized university instances — the multiset of tuples a
//! [`Rows`] cursor yields equals the relation `execute()` materializes
//! (both are duplicate-free, so multiset equality is set equality plus a
//! no-duplicates check on the stream).  Also covers the two runtime
//! `Fallback` variants and the early-exit contract: a cursor dropped after
//! `k` tuples must have stopped all remaining work, observable in the
//! per-query metrics.

use std::collections::HashSet;

use proptest::prelude::*;

use pascalr_repro::pascalr::{Database, Rows, StrategyLevel, Tuple};
use pascalr_repro::pascalr_workload::{
    all_queries, figure1_sample_database, generate, query_by_id, UniversityConfig,
};

fn sample_db() -> Database {
    Database::from_catalog(figure1_sample_database().unwrap())
}

/// Drains a cursor and checks the stream against the materialized result
/// of the same query: same tuples, no duplicates, same cardinality.
fn assert_stream_matches(rows: Rows, db: &Database, text: &str, level: StrategyLevel) {
    let streamed: Vec<Tuple> = rows.map(|r| r.expect("streamed tuple")).collect();
    let outcome = db.query_with(text, level).expect("materialized execution");
    let mut seen = HashSet::new();
    for t in &streamed {
        assert!(seen.insert(t.clone()), "cursor emitted {t} twice");
        assert!(
            outcome.result.contains(t),
            "cursor emitted {t}, which execute() did not produce"
        );
    }
    assert_eq!(
        streamed.len(),
        outcome.result.cardinality(),
        "stream and relation disagree on cardinality"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole equivalence: `execute()` == `rows().collect()` for
    /// random (instance, query, level) combinations, through the prepared
    /// path (plan-cache hits included — the same prepared query is
    /// streamed and materialized).
    #[test]
    fn rows_match_execute_on_random_instances(
        seed in 0u64..1024,
        query_idx in 0usize..16,
        level_idx in 0usize..5,
    ) {
        let config = UniversityConfig { seed, ..UniversityConfig::at_scale(1) };
        let db = Database::from_catalog(generate(&config).unwrap());
        let queries = all_queries();
        let query = &queries[query_idx % queries.len()];
        let level = StrategyLevel::ALL[level_idx];

        let session = db.session().with_strategy(level);
        let prepared = session.prepare(query.text).unwrap();
        let rows = prepared.rows().unwrap();
        assert_stream_matches(rows, &db, query.text, level);
    }
}

#[test]
fn rows_match_execute_under_the_lemma1_fallback() {
    // Empty `papers` triggers the AdaptedForEmptyRelations fallback at
    // every level; the stream must match and report it.
    let db = sample_db();
    db.mutate(|c| c.relation_mut("papers").unwrap().clear());
    let text = query_by_id("ex2.1").unwrap().text;
    for level in StrategyLevel::ALL {
        let session = db.session().with_strategy(level);
        let mut rows = session.rows(text).unwrap();
        assert!(rows.fallback().is_none(), "fallbacks are detected lazily");
        let streamed: Vec<Tuple> = rows.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(streamed.len(), 3, "the three professors qualify at {level}");
        let fallback = rows.fallback().expect("fallback reported after streaming");
        assert!(fallback.contains("papers"), "{level}: {fallback}");
        assert_stream_matches(session.rows(text).unwrap(), &db, text, level);
    }
}

#[test]
fn rows_match_execute_under_the_extended_range_fallback() {
    // Only a senior-level course left: the extended range of `c` is empty,
    // so Strategy 3/4 re-plan at S2 — through the streaming path too.
    let db = sample_db();
    db.mutate(|catalog| {
        let level_ty = catalog.types().enum_type("leveltype").unwrap().clone();
        let courses = catalog.relation_mut("courses").unwrap();
        courses.clear();
        courses
            .insert(pascalr_repro::pascalr::Tuple::new(vec![
                pascalr_repro::pascalr::Value::int(60),
                level_ty.value("senior").unwrap(),
                pascalr_repro::pascalr::Value::str("Advanced"),
            ]))
            .unwrap();
    });
    let text = query_by_id("ex2.1").unwrap().text;
    for level in [
        StrategyLevel::S3ExtendedRanges,
        StrategyLevel::S4CollectionQuantifiers,
    ] {
        let session = db.session().with_strategy(level);
        let mut rows = session.rows(text).unwrap();
        let streamed: Vec<Tuple> = rows.by_ref().map(|r| r.unwrap()).collect();
        let fallback = rows.fallback().expect("extended-range fallback");
        assert!(fallback.contains("re-planned at S2"), "{level}: {fallback}");
        assert!(!streamed.is_empty());
        assert_stream_matches(session.rows(text).unwrap(), &db, text, level);
    }
}

#[test]
fn unconsumed_cursor_records_no_work() {
    let db = Database::from_catalog(generate(&UniversityConfig::at_scale(4)).unwrap());
    let session = db.session();
    let prepared = session.prepare(query_by_id("q01").unwrap().text).unwrap();
    let rows = prepared.rows().unwrap();
    let outcome = rows.finish(); // dropped before the first `next()`
    assert!(
        outcome.metrics.total().is_zero(),
        "a never-polled cursor must record no work: {:?}",
        outcome.metrics.total()
    );
    assert_eq!(outcome.rows_emitted, 0);
    assert!(outcome.fallback.is_none());
}

#[test]
fn early_exit_stops_construction_and_combination_work() {
    // q01 is a quantifier-free monadic selection: the combination output
    // streams, so taking one tuple must leave almost all construction
    // dereferences *and* combination intermediates unperformed.
    let db = Database::from_catalog(generate(&UniversityConfig::at_scale(8)).unwrap());
    let session = db.session().with_strategy(StrategyLevel::S1Parallel);
    let prepared = session.prepare(query_by_id("q01").unwrap().text).unwrap();
    use pascalr_repro::pascalr::storage::Phase;

    let mut full = prepared.rows().unwrap();
    let full_count = full.by_ref().collect::<Result<Vec<_>, _>>().unwrap().len();
    let full_outcome = full.finish();
    assert!(full_count > 10, "scale 8 has plenty of professors");

    let mut first = prepared.rows().unwrap();
    let _ = first.next().unwrap().unwrap();
    let first_outcome = first.finish(); // drops the cursor after one tuple
    assert_eq!(first_outcome.rows_emitted, 1);

    let full_derefs = full_outcome.metrics.phase(Phase::Construction).dereferences;
    let first_derefs = first_outcome
        .metrics
        .phase(Phase::Construction)
        .dereferences;
    assert!(
        first_derefs < full_derefs / 2,
        "construction must stream: {first_derefs} vs {full_derefs} dereferences"
    );
    let full_inter = full_outcome
        .metrics
        .phase(Phase::Combination)
        .intermediate_tuples;
    let first_inter = first_outcome
        .metrics
        .phase(Phase::Combination)
        .intermediate_tuples;
    assert!(
        first_inter < full_inter / 2,
        "combination must stream on a quantifier-free plan: {first_inter} vs {full_inter}"
    );
    // The collection phase ran in both cases (it is shared by all tuples).
    assert!(
        first_outcome
            .metrics
            .phase(Phase::Collection)
            .relation_scans
            > 0
    );
}

#[test]
fn row_budget_caps_the_stream() {
    let db = Database::from_catalog(generate(&UniversityConfig::at_scale(8)).unwrap());
    let session = db.session();
    let prepared = session.prepare(query_by_id("q01").unwrap().text).unwrap();
    let budgeted: Vec<Tuple> = prepared
        .rows()
        .unwrap()
        .with_row_budget(5)
        .map(|r| r.unwrap())
        .collect();
    assert_eq!(budgeted.len(), 5);
    // The budget also flows in from the planner hint on uncached plans.
    let selection = db.parse(query_by_id("q01").unwrap().text).unwrap();
    let rows = db
        .rows_selection(&selection, StrategyLevel::S2OneStep)
        .unwrap();
    assert!(rows.plan().row_budget.is_none(), "no hint by default");
}

#[test]
fn a_cursor_that_fails_to_start_surfaces_the_error() {
    use pascalr_repro::pascalr::calculus::{
        ComponentRef, Formula, RangeDecl, RangeExpr, Selection,
    };
    let db = sample_db();
    // A hand-built selection over a relation the catalog does not have:
    // planning succeeds, execution cannot start.
    let sel = Selection::new(
        "q",
        vec![ComponentRef::new("x", "enr")],
        vec![RangeDecl::new("x", RangeExpr::relation("nosuch"))],
        Formula::truth(),
    );
    let mut rows = db
        .rows_selection(&sel, StrategyLevel::S1Parallel)
        .expect("planning does not touch the missing relation");
    assert!(rows.schema().is_err(), "schema() reports the start failure");
    assert!(rows.next().is_none(), "the cursor stays terminated");
    let outcome = rows.finish();
    assert_eq!(outcome.rows_emitted, 0);
}

#[test]
fn schema_is_available_before_the_first_tuple() {
    let db = sample_db();
    let session = db.session();
    let mut rows = session.rows(query_by_id("q11").unwrap().text).unwrap();
    let schema = rows.schema().unwrap();
    assert_eq!(schema.arity(), 2, "q11 projects two components");
    assert_eq!(rows.rows_emitted(), 0, "schema() constructs no tuple");
    let n = rows.count();
    assert_eq!(n, 5, "professor/course pairs on the sample database");
}
