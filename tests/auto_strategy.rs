//! Cost-based strategy selection, end to end: `StrategyLevel::Auto` must
//! (a) return exactly the same result multiset as the brute-force oracle
//! and as every fixed level — including with stale statistics — and
//! (b) land within 15% of the best fixed level's observable cost in every
//! cardinality regime while beating the worst fixed level by at least 2×
//! in at least one.

use proptest::prelude::*;

use pascalr::storage::MetricsSnapshot;
use pascalr::{Database, StrategyLevel};
use pascalr_workload::{
    all_queries, generate, oracle_eval, query_by_id, skew_scenarios, UniversityConfig,
};

/// The observable-cost proxy the acceptance criterion is stated in: the
/// paper's counters weighted like the optimizer's default cost weights
/// (tuples and comparisons at 1, intermediates and dereferences at 2).
fn cost_proxy(metrics: &MetricsSnapshot) -> f64 {
    let t = metrics.total();
    t.tuples_read as f64
        + t.comparisons as f64
        + 2.0 * t.intermediate_tuples as f64
        + 2.0 * t.dereferences as f64
}

#[test]
fn auto_is_near_best_in_every_regime_and_beats_the_worst_somewhere() {
    let query = query_by_id("ex2.1").unwrap().text;
    let mut beats_worst_by_2x = false;
    for (name, config) in skew_scenarios(1) {
        let db = Database::from_catalog(generate(&config).unwrap());
        db.analyze().unwrap();

        let mut fixed_costs = Vec::new();
        let mut fixed_outcomes = Vec::new();
        for level in StrategyLevel::ALL {
            let outcome = db.query_with(query, level).unwrap();
            fixed_costs.push((level, cost_proxy(&outcome.report.metrics)));
            fixed_outcomes.push(outcome);
        }
        let auto = db.query_with(query, StrategyLevel::Auto).unwrap();
        let auto_cost = cost_proxy(&auto.report.metrics);
        let best = fixed_costs
            .iter()
            .map(|(_, c)| *c)
            .fold(f64::INFINITY, f64::min);
        let worst = fixed_costs.iter().map(|(_, c)| *c).fold(0.0, f64::max);
        println!(
            "regime {name}: auto chose {} at cost {auto_cost:.0}; fixed {:?}",
            auto.report.strategy.short_name(),
            fixed_costs
                .iter()
                .map(|(l, c)| format!("{}={:.0}", l.short_name(), c))
                .collect::<Vec<_>>()
        );
        assert!(
            auto_cost <= best * 1.15 + 1e-9,
            "regime {name}: auto (chose {}, cost {auto_cost:.0}) exceeds 115% of the best \
             fixed level ({best:.0}); fixed costs: {fixed_costs:?}",
            auto.report.strategy.short_name(),
        );
        if worst >= 2.0 * auto_cost {
            beats_worst_by_2x = true;
        }
        // Auto returns the same result as every fixed level.
        for fixed in &fixed_outcomes {
            assert!(
                auto.result.set_eq(&fixed.result),
                "regime {name}, {}",
                fixed.report.strategy
            );
        }
        // explain() reports estimated vs actual cardinalities per
        // conjunction (the acceptance-criterion surface).
        let text = auto.explain_analyzed();
        assert!(text.contains("estimated vs actual rows:"), "{text}");
        assert!(text.contains("conjunction 1: estimated ~"), "{text}");
    }
    assert!(
        beats_worst_by_2x,
        "auto must beat the worst fixed level by >= 2x in at least one regime"
    );
}

#[test]
fn analyze_handles_the_scale_24_university_workload_in_one_pass() {
    // The satellite guard at workload scale: ANALYZE over the scale-24
    // university database (576 employees, ~2600 tuples total) completes
    // and records cardinalities matching the live relations.  The
    // single-pass / bounded-clone property itself is asserted structurally
    // in `pascalr-catalog`'s `compute_clones_at_most_two_values_per_column`.
    let db = Database::from_catalog(generate(&UniversityConfig::at_scale(24)).unwrap());
    db.analyze().unwrap();
    let catalog = db.snapshot();
    for rel in ["employees", "papers", "courses", "timetable"] {
        let cached = catalog.cached_stats(rel).expect("analyzed");
        assert_eq!(
            cached.cardinality,
            catalog.relation(rel).unwrap().cardinality() as u64,
            "{rel}"
        );
    }
    assert_eq!(
        catalog
            .cached_stats("employees")
            .unwrap()
            .column("enr")
            .unwrap()
            .distinct,
        576
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Auto agrees with the oracle and with every fixed level on random
    /// university instances and workload queries — including the
    /// stale-stats case (ANALYZE, then mutate, then query).
    #[test]
    fn auto_matches_oracle_and_fixed_levels_even_with_stale_stats(
        seed in 0u64..500,
        query_idx in 0usize..16,
        analyze_first in any::<bool>(),
        mutate_after in any::<bool>(),
    ) {
        let config = UniversityConfig { seed, ..UniversityConfig::at_scale(1) };
        let db = Database::from_catalog(generate(&config).unwrap());
        if analyze_first {
            db.analyze().unwrap();
        }
        if mutate_after {
            // Mutations after ANALYZE leave the statistics stale; results
            // must stay exact regardless.
            let professor = db.enum_value("statustype", "professor").unwrap();
            // enr 90..=98 stays inside the schema subrange and clear of the
            // generated 1..=24 keys.
            db.insert_values(
                "employees",
                vec![
                    pascalr::Value::int(90 + (seed % 9) as i64),
                    pascalr::Value::str("Stale"),
                    professor,
                ],
            )
            .unwrap();
            db.insert_values(
                "papers",
                vec![
                    pascalr::Value::int(1 + (seed % 24) as i64),
                    pascalr::Value::int(1977),
                    pascalr::Value::str(format!("Stale paper {seed}")),
                ],
            )
            .unwrap();
        }
        let queries = all_queries();
        let spec = &queries[query_idx % queries.len()];
        let sel = db.parse(spec.text).unwrap();
        let expected = {
            let catalog = db.snapshot();
            oracle_eval(&sel, &catalog).unwrap()
        };
        let auto = db.query_selection(&sel, StrategyLevel::Auto).unwrap();
        prop_assert!(
            expected.set_eq(&auto.result),
            "query {} disagrees with the oracle under Auto (chose {})",
            spec.id,
            auto.report.strategy
        );
        for level in [
            StrategyLevel::S0Baseline,
            StrategyLevel::S2OneStep,
            StrategyLevel::S4CollectionQuantifiers,
        ] {
            let fixed = db.query_selection(&sel, level).unwrap();
            prop_assert!(
                auto.result.set_eq(&fixed.result),
                "query {} at {level} disagrees with Auto",
                spec.id
            );
        }
    }
}
