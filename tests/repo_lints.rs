//! Repo-level lint gate: the library code of the execution-critical crates
//! (`pascalr-exec`, `pascalr` core, `pascalr-planner`) must not panic through
//! `unwrap()`/`expect()` or leave debug printing behind.  Failures on those
//! paths must surface as `ExecError`/`PascalRError` values (or a deliberate
//! `unreachable!` with a proof in the message), and all user-visible output
//! goes through the structured report types — never stdout.
//!
//! Test modules (`#[cfg(test)]`) and comments are exempt; this gate guards
//! the code that runs in production, not the code that checks it.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Tokens banned from non-test library code.
const BANNED: [&str; 4] = [".unwrap()", ".expect(", "dbg!(", "println!("];

/// Crates whose `src/` trees are gated.
const GATED_CRATES: [&str; 3] = ["crates/exec", "crates/core", "crates/planner"];

/// A single banned-token occurrence.
struct Violation {
    file: PathBuf,
    line: usize,
    token: &'static str,
    text: String,
}

/// Net brace depth contributed by one line.  Naive (ignores braces inside
/// string literals), which is fine for this codebase and errs on the side of
/// scanning *more* lines if it ever miscounts inside a test module.
fn brace_delta(line: &str) -> i64 {
    let mut delta = 0;
    for ch in line.chars() {
        match ch {
            '{' => delta += 1,
            '}' => delta -= 1,
            _ => {}
        }
    }
    delta
}

/// Scans one source file, skipping comment lines and `#[cfg(test)]` modules.
fn scan_file(path: &Path, violations: &mut Vec<Violation>) {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => panic!("cannot read {}: {e}", path.display()),
    };
    let mut in_test_mod = false;
    let mut test_depth: i64 = 0;
    let mut pending_cfg_test = false;
    for (idx, line) in src.lines().enumerate() {
        if in_test_mod {
            test_depth += brace_delta(line);
            if test_depth <= 0 {
                in_test_mod = false;
            }
            continue;
        }
        let trimmed = line.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            pending_cfg_test = true;
            continue;
        }
        if pending_cfg_test {
            if trimmed.starts_with("#[") {
                continue; // further attributes between the cfg and the item
            }
            pending_cfg_test = false;
            if trimmed.starts_with("mod ") || trimmed.starts_with("pub mod ") {
                let delta = brace_delta(line);
                if delta > 0 {
                    in_test_mod = true;
                    test_depth = delta;
                }
                // `#[cfg(test)] mod tests;` (out-of-line) needs no skipping:
                // the module lives in its own file under a tests/ path.
                continue;
            }
            // The cfg guarded a non-module item (fn, use, ...): treat the
            // single following item conservatively by still checking it —
            // gated crates keep test-only items inside `mod tests`.
        }
        if trimmed.starts_with("//") {
            continue;
        }
        for token in BANNED {
            if line.contains(token) {
                violations.push(Violation {
                    file: path.to_path_buf(),
                    line: idx + 1,
                    token,
                    text: trimmed.to_string(),
                });
            }
        }
    }
}

/// Recursively collects `.rs` files under `dir`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => panic!("cannot list {}: {e}", dir.display()),
    };
    for entry in entries {
        let path = entry.expect("readable directory entry").path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    out.sort();
}

#[test]
fn gated_crates_have_no_panicking_or_printing_library_code() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut violations = Vec::new();
    for krate in GATED_CRATES {
        let src = root.join(krate).join("src");
        assert!(src.is_dir(), "missing gated source tree {}", src.display());
        let mut files = Vec::new();
        rust_files(&src, &mut files);
        assert!(!files.is_empty(), "no sources under {}", src.display());
        for file in files {
            scan_file(&file, &mut violations);
        }
    }
    if !violations.is_empty() {
        let mut msg = String::from(
            "banned calls in non-test library code (return an error or use \
             unreachable!/debug_assert with justification instead):\n",
        );
        for v in &violations {
            let rel = v.file.strip_prefix(root).unwrap_or(&v.file);
            let _ = writeln!(
                msg,
                "  {}:{}: `{}` in `{}`",
                rel.display(),
                v.line,
                v.token,
                v.text
            );
        }
        panic!("{msg}");
    }
}

#[test]
fn the_gate_itself_catches_violations() {
    // Self-check: a synthetic source with each banned token in live code is
    // flagged, while the same tokens under `#[cfg(test)]` or comments pass.
    let dir = std::env::temp_dir().join("pascalr_repo_lints_selfcheck");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let file = dir.join("sample.rs");
    std::fs::write(
        &file,
        r#"
fn live() {
    let x = Some(1).unwrap();
    let y = Some(2).expect("y");
    dbg!(x);
    println!("{y}");
}
// let z = Some(3).unwrap(); — a comment does not count
#[cfg(test)]
mod tests {
    fn exempt() {
        let z = Some(3).unwrap();
        println!("{z}");
    }
}
"#,
    )
    .expect("write sample");
    let mut violations = Vec::new();
    scan_file(&file, &mut violations);
    let tokens: Vec<&str> = violations.iter().map(|v| v.token).collect();
    assert_eq!(tokens, [".unwrap()", ".expect(", "dbg!(", "println!("]);
    assert!(violations.iter().all(|v| v.line < 8), "{tokens:?}");
}
