//! Repo-level lint gates over the workspace's library source code.
//!
//! Four gates, all scanning non-test library code only (test modules,
//! `tests/`, benches and examples are exempt):
//!
//! 1. **No panicking or printing library code** — anywhere in the
//!    workspace: failures must surface as error values (or a deliberate
//!    `unreachable!` with a proof in the message), and all user-visible
//!    output goes through the structured report types, never stdout.
//! 2. **No direct synchronization imports** — every lock, atomic and
//!    thread primitive comes from the `pascalr-sync` facade, so that
//!    `RUSTFLAGS="--cfg loom"` swaps the whole workspace onto the vendored
//!    loom model checker.  A direct `std::sync` or `parking_lot` import
//!    outside `crates/sync` (the facade itself) and `vendor/` would escape
//!    the model checker's schedule and silently weaken the model suite,
//!    so it fails CI.
//! 3. **No direct `std::time::Instant`** — wall-clock reads come from
//!    `pascalr_obs::clock` (the only crate allowed to touch `Instant`),
//!    which is mockable in tests and inert under `--cfg loom`.
//! 4. **No direct `std::fs`** — all file I/O goes through the
//!    [`pascalr_storage::StorageFs`] seam (the only crate allowed to
//!    touch the real filesystem), so crash tests can swap in `MemFs`
//!    fault injection and every durability path stays testable.
//!
//! Both gates are self-testing: a seeded violation file must be flagged,
//! which proves the scanner bites before we trust a clean report.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Tokens banned from non-test library code everywhere in the workspace.
const BANNED_PANICS: [&str; 4] = [".unwrap()", ".expect(", "dbg!(", "println!("];

/// Tokens banned outside the `pascalr-sync` facade: synchronization must
/// go through the facade so `--cfg loom` can swap the backend.
const BANNED_SYNC: [&str; 2] = ["std::sync", "parking_lot"];

/// Tokens banned outside `crates/obs`: timing goes through
/// `pascalr_obs::clock` so tests can freeze/advance it and `--cfg loom`
/// builds stay deterministic.
const BANNED_TIME: [&str; 1] = ["std::time::Instant"];

/// Tokens banned outside `crates/storage`: file I/O goes through the
/// `StorageFs` seam so durability code is crash-testable on `MemFs`.
const BANNED_FS: [&str; 1] = ["std::fs"];

/// Crates whose `src/` trees are scanned (every workspace library crate;
/// `src` is the root facade crate).
const LIB_CRATES: [&str; 15] = [
    "crates/analysis",
    "crates/bench",
    "crates/calculus",
    "crates/catalog",
    "crates/core",
    "crates/exec",
    "crates/obs",
    "crates/optimizer",
    "crates/parser",
    "crates/planner",
    "crates/relation",
    "crates/storage",
    "crates/sync",
    "crates/workload",
    ".",
];

/// A single banned-token occurrence.
struct Violation {
    file: PathBuf,
    line: usize,
    token: &'static str,
    text: String,
}

/// Net brace depth contributed by one line.  Naive (ignores braces inside
/// string literals), which is fine for this codebase and errs on the side of
/// scanning *more* lines if it ever miscounts inside a test module.
fn brace_delta(line: &str) -> i64 {
    let mut delta = 0;
    for ch in line.chars() {
        match ch {
            '{' => delta += 1,
            '}' => delta -= 1,
            _ => {}
        }
    }
    delta
}

/// Scans one source file for `tokens`, skipping comment lines and
/// `#[cfg(test)]` modules.
fn scan_file(path: &Path, tokens: &[&'static str], violations: &mut Vec<Violation>) {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => panic!("cannot read {}: {e}", path.display()),
    };
    scan_source(path, &src, tokens, violations);
}

/// Token scan over in-memory source (separated out so the self-tests can
/// feed synthetic files through the exact production scanner).
fn scan_source(path: &Path, src: &str, tokens: &[&'static str], violations: &mut Vec<Violation>) {
    let mut in_test_mod = false;
    let mut test_depth: i64 = 0;
    let mut pending_cfg_test = false;
    for (idx, line) in src.lines().enumerate() {
        if in_test_mod {
            test_depth += brace_delta(line);
            if test_depth <= 0 {
                in_test_mod = false;
            }
            continue;
        }
        let trimmed = line.trim_start();
        if trimmed.starts_with("#[cfg(test)]") || trimmed.starts_with("#[cfg(all(test") {
            pending_cfg_test = true;
            continue;
        }
        if pending_cfg_test {
            if trimmed.starts_with("#[") {
                continue; // further attributes between the cfg and the item
            }
            pending_cfg_test = false;
            if trimmed.starts_with("mod ") || trimmed.starts_with("pub mod ") {
                let delta = brace_delta(line);
                if delta > 0 {
                    in_test_mod = true;
                    test_depth = delta;
                }
                // `#[cfg(test)] mod tests;` (out-of-line) needs no skipping:
                // the module lives in its own file under a tests/ path.
                continue;
            }
            // The cfg guarded a non-module item (fn, use, ...): treat the
            // single following item conservatively by still checking it —
            // gated crates keep test-only items inside `mod tests`.
        }
        if trimmed.starts_with("//") {
            continue;
        }
        for token in tokens {
            if line.contains(token) {
                violations.push(Violation {
                    file: path.to_path_buf(),
                    line: idx + 1,
                    token,
                    text: trimmed.to_string(),
                });
            }
        }
    }
}

/// Recursively collects `.rs` files under `dir`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => panic!("cannot list {}: {e}", dir.display()),
    };
    for entry in entries {
        let path = entry.expect("readable directory entry").path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    out.sort();
}

/// Runs `tokens` over the `src/` tree of every crate in `crates`, and
/// panics with a per-site report when anything is flagged.
fn run_gate(crates: &[&str], tokens: &[&'static str], advice: &str) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut violations = Vec::new();
    for krate in crates {
        let src = root.join(krate).join("src");
        assert!(src.is_dir(), "missing gated source tree {}", src.display());
        let mut files = Vec::new();
        rust_files(&src, &mut files);
        assert!(!files.is_empty(), "no sources under {}", src.display());
        for file in files {
            scan_file(&file, tokens, &mut violations);
        }
    }
    if !violations.is_empty() {
        let mut msg = format!("banned tokens in non-test library code ({advice}):\n");
        for v in &violations {
            let rel = v.file.strip_prefix(root).unwrap_or(&v.file);
            let _ = writeln!(
                msg,
                "  {}:{}: `{}` in `{}`",
                rel.display(),
                v.line,
                v.token,
                v.text
            );
        }
        panic!("{msg}");
    }
}

#[test]
fn no_panicking_or_printing_library_code_workspace_wide() {
    run_gate(
        &LIB_CRATES,
        &BANNED_PANICS,
        "return an error or use unreachable!/debug_assert with justification instead",
    );
}

#[test]
fn all_synchronization_goes_through_the_pascalr_sync_facade() {
    let gated: Vec<&str> = LIB_CRATES
        .iter()
        .copied()
        .filter(|krate| *krate != "crates/sync")
        .collect();
    run_gate(
        &gated,
        &BANNED_SYNC,
        "import locks/atomics/threads from pascalr_sync so --cfg loom can model-check them",
    );
}

#[test]
fn all_wall_clock_reads_go_through_the_obs_clock() {
    let gated: Vec<&str> = LIB_CRATES
        .iter()
        .copied()
        .filter(|krate| *krate != "crates/obs")
        .collect();
    run_gate(
        &gated,
        &BANNED_TIME,
        "read the clock via pascalr_obs::clock (mockable, inert under --cfg loom)",
    );
}

#[test]
fn all_file_io_goes_through_the_storage_fs_seam() {
    let gated: Vec<&str> = LIB_CRATES
        .iter()
        .copied()
        .filter(|krate| *krate != "crates/storage")
        .collect();
    run_gate(
        &gated,
        &BANNED_FS,
        "do file I/O through the pascalr_storage StorageFs seam (crash-testable via MemFs)",
    );
}

#[test]
fn the_fs_gate_catches_violations() {
    // Self-check: a live import and a fully qualified call are flagged;
    // comments, test modules and the storage seam's own types are not.
    let sample = r#"
use std::fs::File;
use pascalr_storage::StorageFs;

fn live(path: &std::path::Path) -> std::io::Result<Vec<u8>> {
    std::fs::read(path)
}
// std::fs::write in a comment does not count
#[cfg(test)]
mod tests {
    fn exempt() {
        let _ = std::fs::read("x");
    }
}
"#;
    let mut violations = Vec::new();
    scan_source(Path::new("io.rs"), sample, &BANNED_FS, &mut violations);
    let flagged: Vec<usize> = violations.iter().map(|v| v.line).collect();
    assert_eq!(
        flagged,
        [2, 6],
        "exactly the import and the live read are flagged"
    );
}

#[test]
fn the_time_gate_catches_violations() {
    // Self-check: a live `Instant` read is flagged; `Duration` uses,
    // comments and test modules are not.
    let sample = r#"
use std::time::Instant;

fn live() -> std::time::Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}
// std::time::Instant in a comment does not count
#[cfg(test)]
mod tests {
    fn exempt() {
        let _ = std::time::Instant::now();
    }
}
"#;
    let mut violations = Vec::new();
    scan_source(Path::new("timed.rs"), sample, &BANNED_TIME, &mut violations);
    let flagged: Vec<usize> = violations.iter().map(|v| v.line).collect();
    assert_eq!(
        flagged,
        [2, 5],
        "exactly the import and the live read are flagged"
    );
}

#[test]
fn the_panic_gate_catches_violations() {
    // Self-check: a synthetic source with each banned token in live code is
    // flagged, while the same tokens under `#[cfg(test)]` or comments pass.
    let sample = r#"
fn live() {
    let x = Some(1).unwrap();
    let y = Some(2).expect("y");
    dbg!(x);
    println!("{y}");
}
// let z = Some(3).unwrap(); — a comment does not count
#[cfg(test)]
mod tests {
    fn exempt() {
        let z = Some(3).unwrap();
        println!("{z}");
    }
}
"#;
    let mut violations = Vec::new();
    scan_source(
        Path::new("sample.rs"),
        sample,
        &BANNED_PANICS,
        &mut violations,
    );
    let tokens: Vec<&str> = violations.iter().map(|v| v.token).collect();
    assert_eq!(tokens, [".unwrap()", ".expect(", "dbg!(", "println!("]);
    assert!(violations.iter().all(|v| v.line < 8), "{tokens:?}");
}

#[test]
fn the_sync_facade_gate_catches_violations() {
    // Self-check with a seeded direct import of each banned backend: the
    // `use` lines and a fully qualified path must all be flagged; the
    // facade import and commented/test occurrences must not.
    let sample = r#"
use std::sync::Arc;
use parking_lot::Mutex;
use pascalr_sync::RwLock;

fn live() {
    let _flag = std::sync::atomic::AtomicBool::new(false);
}
// std::sync::Mutex in a comment does not count
#[cfg(test)]
mod tests {
    use std::sync::mpsc; // test code is exempt
}
"#;
    let mut violations = Vec::new();
    scan_source(
        Path::new("seeded.rs"),
        sample,
        &BANNED_SYNC,
        &mut violations,
    );
    let flagged: Vec<(usize, &str)> = violations.iter().map(|v| (v.line, v.token)).collect();
    assert_eq!(
        flagged,
        [(2, "std::sync"), (3, "parking_lot"), (7, "std::sync")],
        "exactly the seeded live imports are flagged"
    );
}
