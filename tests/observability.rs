//! Engine-wide observability, end to end through the public facade:
//! span trees (well-formed, per-stage durations bounded by the total),
//! the metrics registry (counters/gauges/histograms, exact totals under
//! a 4-thread join), the Prometheus/JSON renderings (round-tripped
//! through the exposition parser), the slow-query log (captures exactly
//! the over-threshold queries) and plan-cache eviction accounting.
//!
//! Not compiled under `--cfg loom`: span collection and the clock are
//! deliberately inert there (see `pascalr-obs`), so every assertion on
//! collected trees or measured durations would be vacuous.
#![cfg(not(loom))]

use std::time::Duration;

use pascalr::{Database, StrategyLevel};
use pascalr_obs::{expo, Histogram};
use pascalr_sync::thread;
use pascalr_workload::figure1_sample_database;

fn sample_db() -> Database {
    Database::from_catalog(figure1_sample_database().expect("static sample database"))
}

const EX21: &str = "profs := [<e.ename> OF EACH e IN employees: (e.estatus = professor) AND \
                    SOME p IN papers (p.penr = e.enr)]";

/// Acceptance: a traced text query yields a well-formed span tree whose
/// root covers parse, plan and execute, and whose per-stage durations
/// never exceed the total.
#[test]
fn traced_text_query_produces_a_well_formed_span_tree() {
    let db = sample_db();
    db.set_query_tracing(true);
    let outcome = db
        .query_with(EX21, StrategyLevel::S4CollectionQuantifiers)
        .expect("query runs");
    let tree = outcome
        .report
        .span_tree
        .as_ref()
        .expect("tracing is on, the report carries the tree");
    assert!(tree.is_well_formed(), "ill-formed tree:\n{}", tree.render());
    assert_eq!(tree.root.name, "query");
    for stage in [
        "parse",
        "plan",
        "execute",
        "collection",
        "collect_candidates",
    ] {
        assert!(
            tree.root.find(stage).is_some(),
            "stage `{stage}` missing from tree:\n{}",
            tree.render()
        );
        let duration = tree.root.find(stage).expect("just checked").duration;
        assert!(
            duration <= tree.root.duration,
            "stage `{stage}` ({duration:?}) exceeds the query total ({:?})",
            tree.root.duration
        );
    }
    assert!(
        tree.root.child_duration_sum() <= tree.root.duration,
        "direct children exceed the root:\n{}",
        tree.render()
    );
    // The timing section of EXPLAIN ANALYZE renders the same tree.
    let analyzed = outcome.explain_analyzed();
    assert!(analyzed.contains("timing: total"), "{analyzed}");
    assert!(analyzed.contains("execute"), "{analyzed}");
}

/// Acceptance: `PreparedQuery::rows()` — the streaming path — also
/// produces a well-formed tree, delivered by `Rows::finish`.
#[test]
fn prepared_rows_produce_a_well_formed_span_tree() {
    let db = sample_db();
    db.set_query_tracing(true);
    let session = db
        .session()
        .with_strategy(StrategyLevel::S4CollectionQuantifiers);
    let q = session.prepare(EX21).expect("prepares");
    let mut rows = q.rows().expect("streams");
    let mut produced = 0u64;
    for row in &mut rows {
        row.expect("tuple constructs");
        produced += 1;
    }
    let outcome = rows.finish();
    assert_eq!(outcome.rows_emitted, produced);
    let tree = outcome
        .span_tree
        .as_ref()
        .expect("tracing is on, finish() carries the tree");
    assert!(tree.is_well_formed(), "ill-formed tree:\n{}", tree.render());
    assert!(
        tree.root.find("collection").is_some(),
        "execution spans recorded during polling:\n{}",
        tree.render()
    );
    assert!(tree.root.child_duration_sum() <= tree.root.duration);
    // Streaming queries feed the time-to-first-tuple histogram.
    let ttft = db
        .metrics_registry()
        .histogram("pascalr_time_to_first_tuple_nanoseconds")
        .expect("registered");
    assert_eq!(ttft.count(), 1, "one streaming query produced tuples");
}

/// With tracing off and no slow-query threshold, queries carry no span
/// tree and collect no events — but the registry still counts them.
#[test]
fn disabled_tracing_collects_no_spans_but_still_counts() {
    let db = sample_db();
    assert!(!db.query_tracing());
    assert!(db.slow_query_threshold().is_none());
    let outcome = db
        .query_with(EX21, StrategyLevel::S2OneStep)
        .expect("query runs");
    assert!(
        outcome.report.span_tree.is_none(),
        "no collector is installed while tracing is off"
    );
    assert!(db.slow_queries().is_empty());
    assert!(outcome.explain_analyzed().contains("timing: execution"));
    let registry = db.metrics_registry();
    assert_eq!(registry.counter_total("pascalr_queries_total"), 1);
    assert_eq!(
        registry.counter_total("pascalr_rows_emitted_total"),
        outcome.result.cardinality() as u64
    );
    let latency = registry
        .histogram("pascalr_query_latency_nanoseconds")
        .expect("registered");
    assert_eq!(latency.count(), 1);
}

/// The log-bucketed histogram places values exactly: bucket `i` covers
/// `[2^(i-1), 2^i - 1]`.
#[test]
fn histogram_buckets_respect_their_boundaries() {
    let h = Histogram::new();
    for value in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024] {
        h.record(value);
    }
    let counts = h.bucket_counts();
    assert_eq!(counts[0], 1, "0 lands in bucket 0");
    assert_eq!(counts[1], 1, "1 is the whole of bucket 1");
    assert_eq!(counts[2], 2, "2 and 3 fill bucket [2, 3]");
    assert_eq!(counts[3], 2, "4 and 7 bound bucket [4, 7]");
    assert_eq!(counts[4], 1, "8 opens bucket [8, 15]");
    assert_eq!(counts[10], 1, "1023 closes bucket [512, 1023]");
    assert_eq!(counts[11], 1, "1024 opens bucket [1024, 2047]");
    assert_eq!(h.count(), 9);
    assert_eq!(h.sum(), 2072);
    assert_eq!(h.max(), 1024);
    assert_eq!(Histogram::bucket_upper_bound(10), 1023);
    assert!(h.quantile(1.0) <= h.max());
}

/// 4 threads hammer one shared database; after the join the registry's
/// relaxed counters must equal the sums of the per-query snapshots the
/// threads collected — exact, not approximate.
#[test]
fn registry_totals_match_per_query_snapshots_across_threads() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 25;
    let db = sample_db();
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let db = db.clone();
            thread::spawn(move || {
                let q = db
                    .session()
                    .with_strategy(StrategyLevel::S4CollectionQuantifiers)
                    .prepare(EX21)
                    .expect("prepares");
                let mut rows = 0u64;
                let mut tuples_read = 0u64;
                for _ in 0..PER_THREAD {
                    let outcome = q.execute().expect("executes");
                    rows += outcome.result.cardinality() as u64;
                    tuples_read += outcome.report.metrics.total().tuples_read;
                }
                (rows, tuples_read)
            })
        })
        .collect();
    let mut rows_sum = 0u64;
    let mut tuples_sum = 0u64;
    for handle in handles {
        let (rows, tuples) = handle.join().expect("worker");
        rows_sum += rows;
        tuples_sum += tuples;
    }
    assert!(tuples_sum > 0, "the workload did real work");
    let registry = db.metrics_registry();
    assert_eq!(
        registry.counter_total("pascalr_queries_total"),
        THREADS * PER_THREAD
    );
    assert_eq!(
        registry.counter_total("pascalr_rows_emitted_total"),
        rows_sum
    );
    let latency = registry
        .histogram("pascalr_query_latency_nanoseconds")
        .expect("registered");
    assert_eq!(latency.count(), THREADS * PER_THREAD);
    assert!(latency.sum() > 0, "queries took measurable time");
}

/// Acceptance: the slow-query log captures exactly the queries that
/// exceed the configured threshold, with their text and span trees.
#[test]
fn slow_query_log_captures_exactly_over_threshold_queries() {
    let db = sample_db();
    // Everything exceeds a zero threshold.
    db.set_slow_query_threshold(Some(Duration::ZERO));
    assert_eq!(db.slow_query_threshold(), Some(Duration::ZERO));
    db.query_with(EX21, StrategyLevel::S2OneStep).expect("runs");
    db.query_with(
        "names := [<e.ename> OF EACH e IN employees: e.estatus = professor]",
        StrategyLevel::S0Baseline,
    )
    .expect("runs");
    let captured = db.slow_queries();
    assert_eq!(captured.len(), 2, "both queries exceeded zero");
    assert!(captured[0].query.contains("papers"));
    assert!(captured[1].query.contains("estatus"));
    assert_eq!(captured[1].strategy, StrategyLevel::S0Baseline);
    for slow in &captured {
        assert!(slow.elapsed > Duration::ZERO);
        let tree = slow
            .span_tree
            .as_ref()
            .expect("a threshold implies span collection");
        assert!(tree.is_well_formed());
        assert!(slow.metrics.total().tuples_read > 0);
    }
    assert_eq!(
        db.metrics_registry()
            .counter_total("pascalr_slow_queries_total"),
        2
    );

    // Nothing exceeds an hour; nothing is captured with the log disabled.
    db.set_slow_query_threshold(Some(Duration::from_secs(3600)));
    db.query_with(EX21, StrategyLevel::S2OneStep).expect("runs");
    db.set_slow_query_threshold(None);
    db.query_with(EX21, StrategyLevel::S2OneStep).expect("runs");
    assert_eq!(db.slow_queries().len(), 2, "no new captures");

    // Clearing empties the ring but keeps the cumulative counter.
    db.clear_slow_queries();
    assert!(db.slow_queries().is_empty());
    assert_eq!(
        db.metrics_registry()
            .counter_total("pascalr_slow_queries_total"),
        2
    );
}

/// Acceptance: the Prometheus rendering round-trips through the
/// exposition parser — well-formed HELP/TYPE/sample structure, valid
/// cumulative histograms.
#[test]
fn prometheus_rendering_round_trips_through_the_exposition_parser() {
    let db = sample_db();
    db.set_query_tracing(true);
    db.analyze().expect("analyze");
    db.query(EX21).expect("auto query");
    let mut rows = db.session().rows(EX21).expect("streams");
    rows.next().expect("a tuple").expect("constructs");
    drop(rows);

    let page = db.render_prometheus();
    let exposition =
        expo::parse(&page).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{page}"));
    let queries = exposition
        .family("pascalr_queries_total")
        .expect("counter family present");
    assert_eq!(queries.kind, "counter");
    assert!(queries.samples[0].value >= 2.0);
    let latency = exposition
        .family("pascalr_query_latency_nanoseconds")
        .expect("histogram family present");
    assert_eq!(latency.kind, "histogram");
    assert!(exposition.family("pascalr_plan_cache_entries").is_some());
    assert!(exposition
        .family("pascalr_auto_level_chosen_total")
        .is_some());

    // The JSON rendering is structurally sound too (hand-rolled writer).
    let json = db.metrics_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"pascalr_queries_total\""));
    assert!(json.contains("\"histograms\""));
}

/// Satellite: capacity evictions are counted and exposed — both through
/// `plan_cache_stats` and the registry (hits/misses/evictions/entries).
#[test]
fn plan_cache_evictions_are_counted_once_the_cap_is_hit() {
    let db = Database::from_declarations(
        "TYPE idtype = 1..1000000;
         VAR items : RELATION <id> OF
               RECORD
                 id : idtype
               END;",
    )
    .expect("declarations parse");
    // 1100 distinct query shapes at one catalog epoch: the 1024-entry cap
    // must evict (and count) at least 76 plans.
    for i in 0..1100 {
        let text = format!("hit := [<x.id> OF EACH x IN items: x.id = {}]", i + 1);
        db.explain(&text, StrategyLevel::S0Baseline).expect("plans");
    }
    let stats = db.plan_cache_stats();
    assert!(stats.entries <= 1024, "cap respected: {}", stats.entries);
    assert!(
        stats.evictions >= 76,
        "evictions counted: {}",
        stats.evictions
    );
    assert_eq!(stats.misses, 1100, "every distinct shape planned once");
    let registry = db.metrics_registry();
    assert_eq!(
        registry.counter_total("pascalr_plan_cache_evictions_total"),
        stats.evictions
    );
    assert_eq!(
        registry.counter_total("pascalr_plan_cache_misses_total"),
        stats.misses
    );
    assert_eq!(
        registry.counter_total("pascalr_plan_cache_hits_total"),
        stats.hits
    );
    assert_eq!(
        registry.gauge_value("pascalr_plan_cache_entries"),
        Some(stats.entries as u64)
    );
}

/// Lifecycle counters: snapshot pins, epoch publishes and ANALYZE runs
/// all tick; a fork starts a fresh registry.
#[test]
fn lifecycle_counters_tick_and_forks_get_fresh_registries() {
    let db = sample_db();
    let _pin = db.snapshot();
    db.insert_values(
        "courses",
        vec![
            pascalr::Value::int(90),
            db.enum_value("leveltype", "senior").expect("enum"),
            pascalr::Value::str("Observability"),
        ],
    )
    .expect("insert");
    db.analyze_relation("courses").expect("analyze");
    let registry = db.metrics_registry();
    assert!(registry.counter_total("pascalr_snapshot_pins_total") >= 1);
    assert_eq!(registry.counter_total("pascalr_epoch_publishes_total"), 2);
    assert_eq!(registry.counter_total("pascalr_analyze_runs_total"), 1);

    let fork = db.fork();
    assert_eq!(
        fork.metrics_registry()
            .counter_total("pascalr_epoch_publishes_total"),
        0,
        "a fork's registry starts empty"
    );
    fork.query(EX21).expect("fork still answers queries");
    assert_eq!(
        fork.metrics_registry()
            .counter_total("pascalr_queries_total"),
        1
    );
}

/// Satellite (storage engine): the durability counters — buffer pool,
/// WAL, recovery, checkpoints — are registered on every database and
/// round-trip through both exposition formats with the values the
/// storage backend actually ticked.
#[test]
fn storage_counters_round_trip_through_both_expositions() {
    use pascalr::{FsyncPolicy, HeapOptions, MemFs};

    // In-memory databases register the families too (at zero).
    let mem = sample_db();
    let page = mem.render_prometheus();
    let exposition = expo::parse(&page).expect("valid exposition");
    let zero = exposition
        .family("pascalr_wal_appends_total")
        .expect("storage family registered on in-memory databases");
    assert_eq!(zero.kind, "counter");
    assert_eq!(zero.samples[0].value, 0.0);

    // A persistent database ticks them for real.
    let fs = MemFs::new();
    let db = pascalr::Database::open_on(
        pascalr_sync::Arc::new(fs.clone()),
        HeapOptions {
            pool_pages: 4,
            fsync: FsyncPolicy::EveryCommit,
        },
    )
    .expect("open on MemFs");
    db.mutate(|c| *c = figure1_sample_database().expect("sample database"));
    db.analyze().expect("analyze");
    drop(db);
    let db = pascalr::Database::open_on(pascalr_sync::Arc::new(fs), HeapOptions::default())
        .expect("reopen");

    let page = db.render_prometheus();
    let exposition =
        expo::parse(&page).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{page}"));
    let registry = db.metrics_registry();
    for family in [
        "pascalr_buffer_pool_hits_total",
        "pascalr_buffer_pool_misses_total",
        "pascalr_buffer_pool_evictions_total",
        "pascalr_wal_appends_total",
        "pascalr_wal_bytes_total",
        "pascalr_wal_fsyncs_total",
        "pascalr_recovery_replays_total",
        "pascalr_checkpoints_total",
    ] {
        let parsed = exposition
            .family(family)
            .unwrap_or_else(|| panic!("{family} missing from the exposition"));
        assert_eq!(parsed.kind, "counter", "{family}");
        let expected = registry.counter_total(family) as f64;
        assert_eq!(parsed.samples[0].value, expected, "{family}");
        assert!(
            db.metrics_json().contains(&format!("\"{family}\"")),
            "{family} missing from the JSON rendering"
        );
    }
    // The reopen replayed the logged ANALYZE and re-read the checkpointed
    // pages through the pool.
    assert!(registry.counter_total("pascalr_recovery_replays_total") >= 1);
    assert!(registry.counter_total("pascalr_buffer_pool_misses_total") > 0);
    assert!(registry.counter_total("pascalr_checkpoints_total") >= 1);
}
