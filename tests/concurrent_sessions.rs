//! Multi-threaded smoke test: several threads share one `Database` clone
//! and run the paper's worked examples (2.1, 3.2, 4.5, 4.7) concurrently,
//! through prepared queries, at every strategy level.  Every thread must see
//! exactly the oracle's results, and the metrics aggregated across threads
//! must be sane (every execution did real work).

use pascalr_repro::pascalr::{Database, PreparedQuery, StrategyLevel};
use pascalr_repro::pascalr_workload::{figure1_sample_database, oracle_eval, paper_queries};

const THREADS: usize = 4;
const ROUNDS: usize = 3;

#[test]
fn threads_sharing_one_database_agree_with_the_oracle() {
    let db = Database::from_catalog(figure1_sample_database().unwrap());

    // Expected results are computed once, up front, from the same catalog.
    let expected: Vec<_> = paper_queries()
        .iter()
        .map(|q| {
            let sel = db.parse(q.text).unwrap();
            (q.id, oracle_eval(&sel, &db.catalog()).unwrap())
        })
        .collect();

    // Prepare every (query, level) pair once; the prepared statements are
    // shared by all threads.
    let prepared: Vec<(&str, StrategyLevel, PreparedQuery)> = paper_queries()
        .iter()
        .flat_map(|q| {
            StrategyLevel::ALL.into_iter().map(|level| {
                let session = db.session().with_strategy(level);
                (q.id, level, session.prepare(q.text).unwrap())
            })
        })
        .collect();

    let total_scans = std::sync::atomic::AtomicU64::new(0);
    let total_queries = std::sync::atomic::AtomicU64::new(0);

    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            // Each thread gets its own clone of the shared handle (the
            // clone shares catalog and plan cache).
            let db = db.clone();
            let expected = &expected;
            let prepared = &prepared;
            let total_scans = &total_scans;
            let total_queries = &total_queries;
            scope.spawn(move || {
                assert!(db.shares_state_with(db.session().database()));
                for round in 0..ROUNDS {
                    for (id, level, stmt) in prepared {
                        let outcome = stmt.execute().unwrap_or_else(|e| {
                            panic!("worker {worker} round {round}: {id} at {level}: {e}")
                        });
                        let (_, oracle) = expected
                            .iter()
                            .find(|(eid, _)| eid == id)
                            .expect("every prepared query has an oracle result");
                        assert!(
                            oracle.set_eq(&outcome.result),
                            "worker {worker} round {round}: {id} at {level} \
                             disagrees with the oracle"
                        );
                        let scans = outcome.report.metrics.total().relation_scans;
                        assert!(scans > 0, "{id} at {level} did no scan work");
                        total_scans.fetch_add(scans, std::sync::atomic::Ordering::Relaxed);
                        total_queries.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            });
        }
    });

    // Aggregated metrics are sane: every (thread, round, query, level)
    // execution was recorded and did real work.
    let executed = total_queries.load(std::sync::atomic::Ordering::Relaxed);
    let scans = total_scans.load(std::sync::atomic::Ordering::Relaxed);
    let expected_executions = (THREADS * ROUNDS * prepared.len()) as u64;
    assert_eq!(executed, expected_executions);
    assert!(
        scans >= executed,
        "every execution scans at least one relation ({scans} scans / {executed} queries)"
    );

    // The plan cache served the whole workload: at most one planning miss
    // per prepared (query, level) pair — preparation itself — regardless of
    // thread count (concurrent same-key misses may rarely race, hence <=
    // a small slack rather than strict equality).
    let stats = db.plan_cache_stats();
    assert!(
        stats.misses <= prepared.len() as u64,
        "prepared statements must not re-plan: {stats:?}"
    );
    assert!(
        stats.hits >= expected_executions,
        "executions are served from the plan cache: {stats:?}"
    );
}

#[test]
fn concurrent_readers_coexist_with_writers() {
    let db = Database::from_catalog(figure1_sample_database().unwrap());
    let session = db.session();
    let stmt = session
        .prepare("profs := [<e.ename> OF EACH e IN employees: e.estatus = professor]")
        .unwrap();
    let baseline = stmt.execute().unwrap().result.cardinality();

    std::thread::scope(|scope| {
        // Readers run the prepared query repeatedly ...
        for _ in 0..3 {
            let stmt = stmt.clone();
            scope.spawn(move || {
                for _ in 0..20 {
                    let outcome = stmt.execute().unwrap();
                    assert!(outcome.result.cardinality() >= baseline);
                }
            });
        }
        // ... while a writer inserts more professors through the same
        // shared handle (each insert bumps the catalog epoch).
        let db = db.clone();
        scope.spawn(move || {
            let prof = db.enum_value("statustype", "professor").unwrap();
            for i in 0..10 {
                db.insert_values(
                    "employees",
                    vec![
                        pascalr_repro::pascalr::Value::int(60 + i),
                        pascalr_repro::pascalr::Value::str(format!("New{i}")),
                        prof.clone(),
                    ],
                )
                .unwrap();
            }
        });
    });

    // All writes landed and the final prepared execution sees them.
    let final_count = stmt.execute().unwrap().result.cardinality();
    assert_eq!(final_count, baseline + 10);
}
