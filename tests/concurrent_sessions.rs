//! Multi-threaded correctness: several threads share one `Database` clone
//! and run the paper's worked examples (2.1, 3.2, 4.5, 4.7) concurrently,
//! through prepared queries, at every strategy level.  Every thread must see
//! exactly the oracle's results, and the metrics aggregated across threads
//! must be sane (every execution did real work).
//!
//! The second half is the reader/writer stress harness for the snapshot
//! concurrency model: streaming `Rows` cursors pin an immutable catalog
//! version, so readers mid-stream never block a writer, writers publish
//! whole batches atomically, and every cursor yields exactly the answer of
//! the version it pinned — no torn reads, no blocking, no locks held
//! across the stream.

use pascalr_repro::pascalr::{Database, PreparedQuery, StrategyLevel};
use pascalr_repro::pascalr_workload::{figure1_sample_database, oracle_eval, paper_queries};

const THREADS: usize = 4;
const ROUNDS: usize = 3;

const PROFS_QUERY: &str = "profs := [<e.ename> OF EACH e IN employees: e.estatus = professor]";

#[test]
fn threads_sharing_one_database_agree_with_the_oracle() {
    let db = Database::from_catalog(figure1_sample_database().unwrap());

    // Expected results are computed once, up front, from the same catalog.
    let expected: Vec<_> = paper_queries()
        .iter()
        .map(|q| {
            let sel = db.parse(q.text).unwrap();
            (q.id, oracle_eval(&sel, &db.snapshot()).unwrap())
        })
        .collect();

    // Prepare every (query, level) pair once; the prepared statements are
    // shared by all threads.
    let prepared: Vec<(&str, StrategyLevel, PreparedQuery)> = paper_queries()
        .iter()
        .flat_map(|q| {
            StrategyLevel::ALL.into_iter().map(|level| {
                let session = db.session().with_strategy(level);
                (q.id, level, session.prepare(q.text).unwrap())
            })
        })
        .collect();

    let total_scans = std::sync::atomic::AtomicU64::new(0);
    let total_queries = std::sync::atomic::AtomicU64::new(0);

    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            // Each thread gets its own clone of the shared handle (the
            // clone shares catalog and plan cache).
            let db = db.clone();
            let expected = &expected;
            let prepared = &prepared;
            let total_scans = &total_scans;
            let total_queries = &total_queries;
            scope.spawn(move || {
                assert!(db.shares_state_with(db.session().database()));
                for round in 0..ROUNDS {
                    for (id, level, stmt) in prepared {
                        let outcome = stmt.execute().unwrap_or_else(|e| {
                            panic!("worker {worker} round {round}: {id} at {level}: {e}")
                        });
                        let (_, oracle) = expected
                            .iter()
                            .find(|(eid, _)| eid == id)
                            .expect("every prepared query has an oracle result");
                        assert!(
                            oracle.set_eq(&outcome.result),
                            "worker {worker} round {round}: {id} at {level} \
                             disagrees with the oracle"
                        );
                        let scans = outcome.report.metrics.total().relation_scans;
                        assert!(scans > 0, "{id} at {level} did no scan work");
                        total_scans.fetch_add(scans, std::sync::atomic::Ordering::Relaxed);
                        total_queries.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            });
        }
    });

    // Aggregated metrics are sane: every (thread, round, query, level)
    // execution was recorded and did real work.
    let executed = total_queries.load(std::sync::atomic::Ordering::Relaxed);
    let scans = total_scans.load(std::sync::atomic::Ordering::Relaxed);
    let expected_executions = (THREADS * ROUNDS * prepared.len()) as u64;
    assert_eq!(executed, expected_executions);
    assert!(
        scans >= executed,
        "every execution scans at least one relation ({scans} scans / {executed} queries)"
    );

    // The plan cache served the whole workload: at most one planning miss
    // per prepared (query, level) pair — preparation itself — regardless of
    // thread count (concurrent same-key misses may rarely race, hence <=
    // a small slack rather than strict equality).
    let stats = db.plan_cache_stats();
    assert!(
        stats.misses <= prepared.len() as u64,
        "prepared statements must not re-plan: {stats:?}"
    );
    assert!(
        stats.hits >= expected_executions,
        "executions are served from the plan cache: {stats:?}"
    );
}

#[test]
fn concurrent_readers_coexist_with_writers() {
    let db = Database::from_catalog(figure1_sample_database().unwrap());
    let session = db.session();
    let stmt = session.prepare(PROFS_QUERY).unwrap();
    let baseline = stmt.execute().unwrap().result.cardinality();

    std::thread::scope(|scope| {
        // Readers run the prepared query repeatedly ...
        for _ in 0..3 {
            let stmt = stmt.clone();
            scope.spawn(move || {
                for _ in 0..20 {
                    let outcome = stmt.execute().unwrap();
                    assert!(outcome.result.cardinality() >= baseline);
                }
            });
        }
        // ... while a writer inserts more professors through the same
        // shared handle (each insert bumps the catalog epoch).
        let db = db.clone();
        scope.spawn(move || {
            let prof = db.enum_value("statustype", "professor").unwrap();
            for i in 0..10 {
                db.insert_values(
                    "employees",
                    vec![
                        pascalr_repro::pascalr::Value::int(60 + i),
                        pascalr_repro::pascalr::Value::str(format!("New{i}")),
                        prof.clone(),
                    ],
                )
                .unwrap();
            }
        });
    });

    // All writes landed and the final prepared execution sees them.
    let final_count = stmt.execute().unwrap().result.cardinality();
    assert_eq!(final_count, baseline + 10);
}

/// The acceptance property of the snapshot redesign, stated directly: a
/// `Rows` stream opened *before* a concurrent insert (a) lets the writer
/// complete while the stream is mid-flight — the cursor holds no lock —
/// and (b) yields exactly the answer of the version it pinned.
#[test]
fn a_rows_stream_opened_before_an_insert_never_blocks_the_writer() {
    use std::sync::mpsc;
    use std::time::Duration;

    let db = Database::from_catalog(figure1_sample_database().unwrap());
    let session = db.session().with_strategy(StrategyLevel::S2OneStep);
    let stmt = session.prepare(PROFS_QUERY).unwrap();

    // Pin a cursor and begin streaming before any write happens.
    let mut rows = stmt.rows().unwrap();
    let pinned_employees = rows.snapshot().relation("employees").unwrap().cardinality();
    let first = rows
        .next()
        .expect("the sample database has professors")
        .unwrap();

    // A writer inserts while the cursor is alive.  If the cursor held a
    // lock, the insert would block and the channel would time out.
    let (done_tx, done_rx) = mpsc::channel();
    std::thread::scope(|scope| {
        let db = db.clone();
        scope.spawn(move || {
            let prof = db.enum_value("statustype", "professor").unwrap();
            for i in 0..5 {
                db.insert_values(
                    "employees",
                    vec![
                        pascalr_repro::pascalr::Value::int(70 + i),
                        pascalr_repro::pascalr::Value::str(format!("Mid{i}")),
                        prof.clone(),
                    ],
                )
                .unwrap();
            }
            done_tx.send(()).unwrap();
        });
        done_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("the writer must not block behind an open Rows cursor");
    });

    // The stream keeps yielding exactly its pinned version: the three
    // original professors, none of the five concurrent inserts.
    let mut streamed: Vec<_> = rows.by_ref().map(|r| r.unwrap()).collect();
    streamed.push(first);
    assert_eq!(
        streamed.len(),
        3,
        "the pinned snapshot has exactly the three original professors"
    );
    assert!(
        !streamed.iter().any(|t| t.to_string().contains("Mid")),
        "a concurrent insert leaked into a pinned stream: {streamed:?}"
    );

    // A cursor opened *now* pins the latest version and sees all of them.
    let fresh: Vec<_> = stmt.rows().unwrap().map(|r| r.unwrap()).collect();
    assert_eq!(fresh.len(), 3 + 5);
    assert_eq!(
        db.snapshot().relation("employees").unwrap().cardinality(),
        pinned_employees + 5
    );
}

/// Mixed reader/writer stress: N readers stream full `Rows` cursors in a
/// loop while one writer interleaves batched inserts (through a maintained
/// permanent index) with index creation and drops.  Every pinned snapshot
/// must be a whole number of published batches ahead of the baseline —
/// `insert_all` publishes atomically, so a half-written batch is never
/// observable — and every stream must yield exactly its snapshot's answer.
#[test]
fn readers_stream_consistent_snapshots_while_a_writer_inserts_and_rebuilds_indexes() {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    const STRESS_READERS: usize = 4;
    const BATCH: usize = 8;
    const WRITER_ROUNDS: usize = 8;

    let db = Database::from_catalog(figure1_sample_database().unwrap());
    // A permanent index maintained across every insert of the run.
    db.create_index("enrindex", "employees", &["enr"]).unwrap();
    let baseline_employees = db.snapshot().relation("employees").unwrap().cardinality();
    let session = db.session().with_strategy(StrategyLevel::S2OneStep);
    let stmt = session.prepare(PROFS_QUERY).unwrap();
    let baseline_profs = stmt.execute().unwrap().result.cardinality();

    let writer_done = AtomicBool::new(false);
    let reader_iterations = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for reader in 0..STRESS_READERS {
            let stmt = stmt.clone();
            let writer_done = &writer_done;
            let reader_iterations = &reader_iterations;
            scope.spawn(move || loop {
                // Read the flag *before* pinning so every reader is
                // guaranteed one final pass over the fully-written state.
                let last = writer_done.load(Ordering::Acquire);
                let mut rows = stmt.rows().unwrap();
                let employees = rows.snapshot().relation("employees").unwrap().cardinality();
                let grown = employees - baseline_employees;
                assert_eq!(
                    grown % BATCH,
                    0,
                    "reader {reader} pinned a half-published batch \
                     ({employees} employees)"
                );
                // Every inserted employee is a professor: the stream must
                // produce exactly the pinned version's answer, however
                // many versions the writer publishes meanwhile.
                let streamed: Vec<_> = rows.by_ref().map(|r| r.unwrap()).collect();
                assert_eq!(
                    streamed.len(),
                    baseline_profs + grown,
                    "reader {reader}: stream disagrees with its own snapshot"
                );
                reader_iterations.fetch_add(1, Ordering::Relaxed);
                if last {
                    break;
                }
            });
        }
        {
            let db = db.clone();
            let writer_done = &writer_done;
            scope.spawn(move || {
                // Raise the flag even if the writer panics, so readers
                // stop looping and the panic fails the test instead of
                // hanging it.
                struct SetOnDrop<'a>(&'a AtomicBool);
                impl Drop for SetOnDrop<'_> {
                    fn drop(&mut self) {
                        self.0.store(true, Ordering::Release);
                    }
                }
                let _done = SetOnDrop(writer_done);
                let prof = db.enum_value("statustype", "professor").unwrap();
                for round in 0..WRITER_ROUNDS {
                    // enr 30..=93: inside enumbertype's 1..99 subrange and
                    // clear of the sample database's keys (10..=22).
                    let base = 30 + (round * BATCH) as i64;
                    let batch: Vec<_> = (0..BATCH as i64)
                        .map(|i| {
                            pascalr_repro::pascalr::Tuple::new(vec![
                                pascalr_repro::pascalr::Value::int(base + i),
                                pascalr_repro::pascalr::Value::str(format!("W{round}x{i}")),
                                prof.clone(),
                            ])
                        })
                        .collect();
                    assert_eq!(db.insert_all("employees", batch).unwrap(), BATCH);
                    // DDL mid-stream: build and drop a scratch index every
                    // round so index (re)builds interleave with readers.
                    let name = format!("scratch{round}");
                    db.create_index(&name, "papers", &["penr"]).unwrap();
                    db.drop_index(&name).unwrap();
                }
            });
        }
    });

    assert!(
        reader_iterations.load(Ordering::Relaxed) >= STRESS_READERS,
        "every reader completed at least its final pass"
    );
    // Every batch landed, and the maintained index survived the churn: the
    // final execution sees all writer rounds.
    assert_eq!(
        db.snapshot().relation("employees").unwrap().cardinality(),
        baseline_employees + WRITER_ROUNDS * BATCH
    );
    assert_eq!(
        stmt.execute().unwrap().result.cardinality(),
        baseline_profs + WRITER_ROUNDS * BATCH
    );
}
