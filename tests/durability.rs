//! Durability end to end through the public facade: reopen round-trips
//! (same relations, statistics, epochs and plans without re-ANALYZE),
//! redo recovery at arbitrary WAL prefixes (the kill-and-reopen
//! property test against an in-memory oracle), torn-write and
//! corrupted-tail WAL handling, and the storage counters the engine
//! surfaces through the metrics registry.
//!
//! Every test runs on [`MemFs`], whose snapshot/truncate/corrupt hooks
//! model crashes without touching the real filesystem — the `DiskFs`
//! path is covered by the storage crate's own tests.

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;

use pascalr::storage::wal;
use pascalr::{Database, FsyncPolicy, HeapOptions, MemFs, StrategyLevel};
use pascalr_relation::{Attribute, RelationSchema, Tuple, Value, ValueType};
use pascalr_sync::Arc;
use pascalr_workload::figure1_sample_database;

const EX21: &str = "profs := [<e.ename> OF EACH e IN employees: (e.estatus = professor) AND \
                    SOME p IN papers (p.penr = e.enr)]";

/// Small pool + fsync-per-commit: the strictest (and default-durability)
/// configuration, with enough pool pressure to exercise eviction.
fn tight_options() -> HeapOptions {
    HeapOptions {
        pool_pages: 8,
        fsync: FsyncPolicy::EveryCommit,
    }
}

fn open_mem(fs: &MemFs, options: HeapOptions) -> Database {
    Database::open_on(Arc::new(fs.clone()), options).expect("open on MemFs")
}

/// Canonical content snapshot: relation name → rendered tuple set.
fn contents(db: &Database) -> BTreeMap<String, BTreeSet<String>> {
    let snap = db.snapshot();
    snap.relation_names()
        .into_iter()
        .map(|name| {
            let rel = snap.relation(name).expect("listed relation resolves");
            (
                name.to_string(),
                rel.iter().map(|(_, t)| t.to_string()).collect(),
            )
        })
        .collect()
}

/// The single WAL file currently on the filesystem (there is exactly one
/// per checkpoint generation).
fn wal_file(fs: &MemFs) -> (String, Vec<u8>) {
    let files = fs.snapshot();
    files
        .into_iter()
        .find(|(name, _)| name.starts_with("wal_"))
        .expect("a persistent database always has a WAL file")
}

fn schema_r() -> Arc<RelationSchema> {
    RelationSchema::new(
        "r",
        vec![
            Attribute::new("a", ValueType::int()),
            Attribute::new("b", ValueType::int()),
        ],
        &["a"],
    )
    .expect("static schema")
}

fn schema_s() -> Arc<RelationSchema> {
    RelationSchema::new("s", vec![Attribute::new("x", ValueType::int())], &["x"])
        .expect("static schema")
}

/// Acceptance: a reopened database serves the same plans without
/// re-ANALYZE — relations, statistics epochs and EXPLAIN output are
/// identical across the reopen, and the plan cache keys (fingerprint,
/// epoch, stats epoch) still hit.
#[test]
fn reopen_serves_identical_plans_without_reanalyze() {
    let fs = MemFs::new();
    let db = open_mem(&fs, HeapOptions::default());
    assert!(db.persistent());

    // Bulk-load Figure 1 (checkpointed), then WAL-logged DDL + ANALYZE.
    db.mutate(|c| *c = figure1_sample_database().expect("sample database"));
    db.create_index("penrindex", "papers", &["penr"]).unwrap();
    db.analyze().unwrap();

    let before_contents = contents(&db);
    let before_epoch = db.epoch();
    let before_stats_epoch = db.stats_epoch();
    let before_auto = db.explain(EX21, StrategyLevel::Auto).unwrap();
    let before_s4 = db
        .explain(EX21, StrategyLevel::S4CollectionQuantifiers)
        .unwrap();
    let rows_before = db.query(EX21).unwrap().result.cardinality();
    drop(db);

    let db2 = open_mem(&fs, HeapOptions::default());
    assert!(db2.persistent());
    assert_eq!(contents(&db2), before_contents);
    assert_eq!(db2.epoch(), before_epoch, "plan epoch survives reopen");
    assert_eq!(
        db2.stats_epoch(),
        before_stats_epoch,
        "statistics survive reopen without re-ANALYZE"
    );
    // The index create + ANALYZE were replayed from the WAL.
    assert!(
        db2.metrics_registry()
            .counter_total("pascalr_recovery_replays_total")
            >= 2
    );

    // Identical plans — Auto's cost-based choice relies on the persisted
    // statistics, so equality here proves no re-ANALYZE was needed.
    assert_eq!(db2.explain(EX21, StrategyLevel::Auto).unwrap(), before_auto);
    assert_eq!(
        db2.explain(EX21, StrategyLevel::S4CollectionQuantifiers)
            .unwrap(),
        before_s4
    );
    assert_eq!(db2.query(EX21).unwrap().result.cardinality(), rows_before);

    // Plan-cache fingerprints match across the reopen: the same text hits
    // the cache on its second run (no epoch/stats drift post-recovery).
    let hits_before = db2.plan_cache_stats().hits;
    db2.query(EX21).unwrap();
    assert!(db2.plan_cache_stats().hits > hits_before);
}

/// A reopen with an empty WAL replays nothing and checkpoints nothing new.
#[test]
fn clean_reopen_replays_nothing() {
    let fs = MemFs::new();
    let db = open_mem(&fs, HeapOptions::default());
    db.mutate(|c| *c = figure1_sample_database().expect("sample database"));
    let before = contents(&db);
    drop(db);

    let db2 = open_mem(&fs, HeapOptions::default());
    assert_eq!(contents(&db2), before);
    assert_eq!(
        db2.metrics_registry()
            .counter_total("pascalr_recovery_replays_total"),
        0
    );
    // Loading the checkpointed pages went through the buffer pool.
    let registry = db2.metrics_registry();
    assert!(
        registry.counter_total("pascalr_buffer_pool_hits_total")
            + registry.counter_total("pascalr_buffer_pool_misses_total")
            > 0
    );
}

/// The storage counters tick through the engine's own registry: WAL
/// volume and fsyncs on the write path, checkpoints on open and
/// `Database::checkpoint`.
#[test]
fn storage_counters_surface_through_the_registry() {
    let fs = MemFs::new();
    let db = open_mem(&fs, tight_options());
    db.declare_relation(schema_r()).unwrap();
    for i in 0..10 {
        db.insert("r", Tuple::new(vec![Value::int(i), Value::int(i * 7)]))
            .unwrap();
    }
    db.analyze().unwrap();

    let registry = db.metrics_registry();
    // declare + 10 inserts + ANALYZE, one record each.
    assert_eq!(registry.counter_total("pascalr_wal_appends_total"), 12);
    assert!(registry.counter_total("pascalr_wal_bytes_total") > 0);
    assert_eq!(
        registry.counter_total("pascalr_wal_fsyncs_total"),
        12,
        "FsyncPolicy::EveryCommit forces every append"
    );
    assert!(registry.counter_total("pascalr_checkpoints_total") >= 1);

    db.checkpoint().unwrap();
    let after = db
        .metrics_registry()
        .counter_total("pascalr_checkpoints_total");
    assert!(after >= 2, "explicit checkpoint is counted: {after}");
    // The WAL was rotated empty by the checkpoint.
    let (_, bytes) = wal_file(&fs);
    assert!(bytes.is_empty());
}

/// A torn append (the classic crash signature: the last frame is cut
/// mid-payload) is discarded on reopen; the fully framed prefix survives.
#[test]
fn torn_wal_tail_is_discarded_on_reopen() {
    let fs = MemFs::new();
    let db = open_mem(&fs, tight_options());
    db.declare_relation(schema_r()).unwrap();
    db.insert("r", Tuple::new(vec![Value::int(1), Value::int(10)]))
        .unwrap();
    db.insert("r", Tuple::new(vec![Value::int(2), Value::int(20)]))
        .unwrap();
    drop(db);

    let (name, bytes) = wal_file(&fs);
    assert!(!bytes.is_empty());
    fs.truncate(&name, bytes.len() - 3);

    let db2 = open_mem(&fs, tight_options());
    let state = contents(&db2);
    // declare + first insert replay; the torn second insert is gone.
    assert_eq!(state["r"].len(), 1);
    assert_eq!(
        db2.metrics_registry()
            .counter_total("pascalr_recovery_replays_total"),
        2
    );
}

/// A corrupted byte in the middle of the log truncates replay at the
/// damaged frame — everything before it is kept, nothing after it is
/// trusted.
#[test]
fn corrupt_wal_byte_truncates_replay_at_the_damage() {
    let fs = MemFs::new();
    let db = open_mem(&fs, tight_options());
    db.declare_relation(schema_r()).unwrap();
    let mut frame_ends = Vec::new();
    for i in 1..=3 {
        db.insert("r", Tuple::new(vec![Value::int(i), Value::int(i)]))
            .unwrap();
        frame_ends.push(wal_file(&fs).1.len());
    }
    drop(db);

    // Flip a payload byte inside the *second* insert's frame.
    let (name, _) = wal_file(&fs);
    fs.corrupt_byte(&name, frame_ends[0] + wal::WAL_FRAME_HEADER + 1);

    let db2 = open_mem(&fs, tight_options());
    let state = contents(&db2);
    assert_eq!(
        state["r"].len(),
        1,
        "only the insert before the damage survives"
    );
}

/// One workload step applied identically to the persistent database and
/// the in-memory oracle.
#[derive(Debug, Clone, Copy)]
struct OpSpec {
    kind: u8,
    a: i64,
    b: i64,
}

fn op_strategy() -> impl Strategy<Value = OpSpec> {
    (0u8..8, 1i64..40, 1i64..100).prop_map(|(kind, a, b)| OpSpec { kind, a, b })
}

/// Applies one step to a database (persistent or oracle). Returns whether
/// the step succeeded; both databases must agree on that.
fn apply(db: &Database, op: OpSpec, indexed: bool, has_s: bool) -> bool {
    let result = match op.kind {
        0..=2 => db.insert("r", Tuple::new(vec![Value::int(op.a), Value::int(op.b)])),
        3 => db
            .insert_all(
                "r",
                (0..3).map(|i| Tuple::new(vec![Value::int(op.a + i), Value::int(op.b)])),
            )
            .map(|_| ()),
        4 => db.analyze(),
        5 => {
            if indexed {
                db.drop_index("r_a")
            } else {
                db.create_index("r_a", "r", &["a"])
            }
        }
        6 => {
            if has_s {
                db.drop_relation("s")
            } else {
                db.declare_relation(schema_s())
            }
        }
        _ => db.insert("s", Tuple::new(vec![Value::int(op.a)])),
    };
    result.is_ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kill-and-reopen at an arbitrary WAL byte prefix: the recovered
    /// database must equal the in-memory oracle after exactly the number
    /// of operations whose frames survived the cut — never a torn,
    /// reordered, or partially applied state.
    #[test]
    fn recovery_at_any_wal_prefix_matches_the_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..12),
        cut_seed in 0usize..10_000,
    ) {
        let fs = MemFs::new();
        let db = open_mem(&fs, tight_options());
        let oracle = Database::from_catalog(pascalr::Catalog::new());

        // states[k] = oracle contents after k *logged* operations. The
        // mandatory first operation declares `r`.
        let mut states = vec![contents(&oracle)];
        let mut indexed = false;
        let mut has_s = false;
        oracle.declare_relation(schema_r()).unwrap();
        db.declare_relation(schema_r()).unwrap();
        states.push(contents(&oracle));
        for op in ops {
            let ok_mem = apply(&oracle, op, indexed, has_s);
            let ok_disk = apply(&db, op, indexed, has_s);
            prop_assert_eq!(ok_mem, ok_disk, "oracle and persistent db diverged on {:?}", op);
            if ok_mem {
                if op.kind == 5 { indexed = !indexed; }
                if op.kind == 6 { has_s = !has_s; }
                states.push(contents(&oracle));
            }
        }
        drop(db);

        // Crash: cut the WAL to an arbitrary byte prefix.
        let (name, bytes) = wal_file(&fs);
        let cut = cut_seed % (bytes.len() + 1);
        fs.truncate(&name, cut);

        // Exactly the fully framed records before the cut replay — one
        // logged operation each.
        let survived = wal::replay(&bytes[..cut]).records.len();
        prop_assert!(survived < states.len());

        let db2 = open_mem(&fs, tight_options());
        prop_assert_eq!(
            &contents(&db2),
            &states[survived],
            "recovered state is not the {}-op oracle prefix", survived
        );
        // The recovered database is fully writable again (the declare of
        // `r` itself may have been cut away — redo it then).
        if survived == 0 {
            db2.declare_relation(schema_r()).unwrap();
        }
        db2.insert("r", Tuple::new(vec![Value::int(1000), Value::int(1)])).unwrap();
    }
}
