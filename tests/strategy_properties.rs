//! Property-based tests: on randomly generated departments and randomly
//! assembled selection expressions, every strategy level must agree with the
//! brute-force oracle, and the core algebraic identities used by the
//! combination phase must hold.

use proptest::prelude::*;

use pascalr::{Database, StrategyLevel};
use pascalr_calculus::{ComponentRef, Formula, Operand, RangeDecl, RangeExpr, Selection};
use pascalr_relation::algebra;
use pascalr_relation::{
    Attribute, CompareOp, EnumType, Relation, RelationSchema, Tuple, Value, ValueType,
};
use pascalr_workload::{generate, oracle_eval, UniversityConfig};

/// A small random selection expression over the university schema.
///
/// The shape is: professor-or-status test on `e`, combined (AND/OR) with a
/// quantified (SOME/ALL) join to papers or timetable, optionally with a
/// monadic restriction on the quantified variable.
fn arbitrary_selection() -> impl Strategy<Value = Selection> {
    let status = 0..4i64;
    let quantified_rel = prop_oneof![Just("papers"), Just("timetable")];
    let use_all = any::<bool>();
    let use_and = any::<bool>();
    let monadic_on_quantified = any::<bool>();
    let year = 1970..1978i64;
    (
        status,
        quantified_rel,
        use_all,
        use_and,
        monadic_on_quantified,
        year,
    )
        .prop_map(|(status, qrel, use_all, use_and, monadic, year)| {
            // The generated catalog declares `statustype` with these labels;
            // an equal enumeration type (same name, same ordinals) compares
            // against it.
            let status_ty = EnumType::new(
                "statustype",
                ["student", "technician", "assistant", "professor"],
            );
            let status_test = Formula::compare(
                Operand::comp("e", "estatus"),
                CompareOp::Eq,
                Operand::Const(status_ty.value_at(status as u32).expect("0..4")),
            );
            let (attr, other_attr) = if qrel == "papers" {
                ("penr", "enr")
            } else {
                ("tenr", "enr")
            };
            let join = Formula::compare(
                Operand::comp("q", attr),
                CompareOp::Eq,
                Operand::comp("e", other_attr),
            );
            let body = if monadic && qrel == "papers" {
                Formula::or(vec![
                    Formula::compare(
                        Operand::comp("q", "pyear"),
                        CompareOp::Ne,
                        Operand::constant(year),
                    ),
                    join,
                ])
            } else {
                join
            };
            let quantified = if use_all {
                Formula::all("q", RangeExpr::relation(qrel), body)
            } else {
                Formula::some("q", RangeExpr::relation(qrel), body)
            };
            let formula = if use_and {
                Formula::and(vec![status_test, quantified])
            } else {
                Formula::or(vec![status_test, quantified])
            };
            Selection::new(
                "result",
                vec![ComponentRef::new("e", "enr")],
                vec![RangeDecl::new("e", RangeExpr::relation("employees"))],
                formula,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every strategy level agrees with the brute-force oracle on random
    /// queries over random databases.
    #[test]
    fn strategies_agree_with_oracle(sel in arbitrary_selection(), seed in 0u64..200) {
        let config = UniversityConfig {
            seed,
            ..UniversityConfig::at_scale(1)
        };
        let cat = generate(&config).unwrap();
        let expected = oracle_eval(&sel, &cat).unwrap();
        let db = Database::from_catalog(cat);
        for level in [StrategyLevel::S0Baseline, StrategyLevel::S2OneStep, StrategyLevel::S4CollectionQuantifiers] {
            let outcome = db.query_selection(&sel, level).unwrap();
            prop_assert!(
                expected.set_eq(&outcome.result),
                "level {level} disagrees with the oracle for {sel}"
            );
        }
    }

    /// Standardization preserves the result for random queries (checked via
    /// the oracle on both forms).
    #[test]
    fn standard_form_preserves_results(sel in arbitrary_selection(), seed in 0u64..100) {
        let config = UniversityConfig { seed, ..UniversityConfig::at_scale(1) };
        let cat = generate(&config).unwrap();
        let original = oracle_eval(&sel, &cat).unwrap();
        let standardized = pascalr_calculus::standardize(&sel);
        let roundtrip = oracle_eval(&standardized.to_selection(), &cat).unwrap();
        prop_assert!(original.set_eq(&roundtrip));
    }
}

/// Random unary/binary integer relations for the algebra identities.
fn int_relation(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Relation {
    let schema = RelationSchema::all_key(
        name.to_string(),
        attrs
            .iter()
            .map(|a| Attribute::new(a.to_string(), ValueType::int()))
            .collect(),
    );
    let mut rel = Relation::new(schema);
    for row in rows {
        let _ = rel.insert(Tuple::new(row.into_iter().map(Value::int).collect()));
    }
    rel
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Semijoin plus antijoin partition the left relation.
    #[test]
    fn semijoin_antijoin_partition(
        left in proptest::collection::vec((0i64..20, 0i64..20), 0..30),
        right in proptest::collection::vec((0i64..20,), 0..20)
    ) {
        let l = int_relation("l", &["a", "b"], left.into_iter().map(|(a, b)| vec![a, b]).collect());
        let r = int_relation("r", &["a"], right.into_iter().map(|(a,)| vec![a]).collect());
        let sj = algebra::semijoin(&l, &r, &[("a", "a")], "sj").unwrap();
        let aj = algebra::antijoin(&l, &r, &[("a", "a")], "aj").unwrap();
        prop_assert_eq!(sj.cardinality() + aj.cardinality(), l.cardinality());
        let back = algebra::union(&sj, &aj, "back").unwrap();
        prop_assert!(back.set_eq(&l));
    }

    /// Division agrees with its classical double-difference definition.
    #[test]
    fn division_matches_classical_definition(
        dividend in proptest::collection::vec((0i64..8, 0i64..8), 0..40),
        divisor in proptest::collection::vec(0i64..8, 0..6)
    ) {
        let r = int_relation("r", &["a", "b"], dividend.into_iter().map(|(a, b)| vec![a, b]).collect());
        let s = int_relation("s", &["b"], divisor.into_iter().map(|b| vec![b]).collect());
        let ours = algebra::divide(&r, &["a"], &["b"], &s, &["b"], "ours").unwrap();
        let pa = algebra::project(&r, "pa", &["a"]).unwrap();
        let cross = algebra::product(&pa, &s, "cross");
        let missing = algebra::difference(&cross, &r, "missing").unwrap();
        let missing_a = algebra::project(&missing, "ma", &["a"]).unwrap();
        let classical = algebra::difference(&pa, &missing_a, "classical").unwrap();
        prop_assert!(ours.set_eq(&classical));
    }

    /// Union is commutative and difference is anti-monotone with respect to
    /// it (sanity identities used throughout the combination phase).
    #[test]
    fn union_identities(
        a in proptest::collection::vec(0i64..30, 0..25),
        b in proptest::collection::vec(0i64..30, 0..25)
    ) {
        let ra = int_relation("a", &["x"], a.into_iter().map(|x| vec![x]).collect());
        let rb = int_relation("b", &["x"], b.into_iter().map(|x| vec![x]).collect());
        let ab = algebra::union(&ra, &rb, "ab").unwrap();
        let ba = algebra::union(&rb, &ra, "ba").unwrap();
        prop_assert!(ab.set_eq(&ba));
        prop_assert!(ab.cardinality() <= ra.cardinality() + rb.cardinality());
        let diff = algebra::difference(&ab, &ra, "d").unwrap();
        let inter = algebra::intersection(&diff, &ra, "i").unwrap();
        prop_assert_eq!(inter.cardinality(), 0);
    }
}
