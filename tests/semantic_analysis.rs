//! End-to-end checks for the semantic analyzer: domain-aware simplification
//! must never change a query's answer (oracle equivalence at every strategy
//! level, including `Auto`), and a provably-empty query must execute without
//! reading a single stored tuple.

use proptest::prelude::*;

use pascalr::{Code, Database, PlanOptions, Severity, StrategyLevel};
use pascalr_parser::parse_selection;
use pascalr_workload::{figure1_sample_database, generate, oracle_eval, UniversityConfig};

/// Query templates over the university schema, each with two integer holes
/// drawn from ranges that straddle the declared attribute domains — so the
/// sampled constants are sometimes in-domain (no rewrite), sometimes
/// unsatisfiable (A005 → `false`), sometimes tautological (A006 → `true`),
/// and sometimes jointly contradictory (A007).
fn templates() -> Vec<fn(i64, i64) -> String> {
    vec![
        |a, _| {
            format!(
                "q := [<e.ename> OF EACH e IN employees: \
                   (e.enr >= {a}) AND SOME p IN papers (p.penr = e.enr)]"
            )
        },
        |a, b| format!("q := [<p.ptitle> OF EACH p IN papers: (p.pyear < {a}) OR (p.pyear > {b})]"),
        |a, b| format!("q := [<c.ctitle> OF EACH c IN courses: (c.cnr <= {a}) AND (c.cnr >= {b})]"),
        |a, _| {
            format!(
                "q := [<e.ename> OF EACH e IN employees: \
                   ALL p IN papers ((p.penr <> e.enr) OR (p.pyear >= {a}))]"
            )
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The analyzer's prepare-time rewrites are invisible in the answer:
    /// executing with `semantic_rewrites` on matches both the brute-force
    /// calculus oracle and a rewrite-free execution, for random constants
    /// over random university instances at every strategy level.
    #[test]
    fn simplified_selections_match_the_unsimplified_oracle(
        scale in 1u32..3,
        template in 0usize..4,
        a in -10i64..2200,
        b in -10i64..2200,
        level in 0usize..6,
    ) {
        let catalog = generate(&UniversityConfig::at_scale(scale)).unwrap();
        let text = templates()[template](a, b);
        let expected = oracle_eval(&parse_selection(&text, &catalog).unwrap(), &catalog).unwrap();

        let db = Database::from_catalog(catalog);
        db.analyze().unwrap();
        let level = if level < StrategyLevel::ALL.len() {
            StrategyLevel::ALL[level]
        } else {
            StrategyLevel::Auto
        };

        let rewritten = db.query_with(&text, level).unwrap();
        prop_assert!(
            rewritten.result.set_eq(&expected),
            "template {} at {} with ({}, {}): rewritten answer has {} rows, oracle {}",
            template, level, a, b,
            rewritten.result.cardinality(),
            expected.cardinality()
        );

        let plain = db
            .session()
            .with_strategy(level)
            .with_plan_options(PlanOptions {
                semantic_rewrites: false,
                ..PlanOptions::default()
            })
            .query(&text)
            .unwrap();
        prop_assert!(
            plain.result.set_eq(&expected),
            "template {} at {} with ({}, {}): rewrite-free answer diverges from the oracle",
            template, level, a, b
        );
    }
}

/// `p.pyear > 1999` is unsatisfiable under `yeartype = 1900..1999`: the
/// analyzer folds the matrix to `false`, and execution must observe that —
/// an empty answer with **zero** stored tuples read in any phase.
#[test]
fn provably_empty_query_reads_zero_tuples() {
    let db = Database::from_catalog(figure1_sample_database().unwrap());
    let text = "q := [<p.ptitle> OF EACH p IN papers: p.pyear > 1999]";

    for level in StrategyLevel::ALL
        .iter()
        .copied()
        .chain([StrategyLevel::Auto])
    {
        let outcome = db.query_with(text, level).unwrap();
        assert_eq!(outcome.result.cardinality(), 0, "{level}: expected no rows");
        let totals = outcome.report.metrics.total();
        assert_eq!(
            totals.tuples_read, 0,
            "{level}: a statically-false query must not scan storage"
        );
        assert!(
            outcome.plan.warnings.iter().any(|w| w.contains("A005")),
            "{level}: the plan should carry the A005 warning; got {:?}",
            outcome.plan.warnings
        );
    }

    // The diagnosis is also visible before execution, via `Session::check`.
    let diags = db.session().check(text).unwrap();
    assert!(diags
        .iter()
        .any(|d| d.code == Code::A005 && d.severity == Severity::Warning));

    // ... and in the rendered plan.
    let explained = db.session().explain(text).unwrap();
    assert!(
        explained.contains("warning[A005]"),
        "explain() should surface analyzer warnings:\n{explained}"
    );
}
