//! Permanent-index end-to-end tests: maintained catalog indexes must never
//! change *what* a query answers — only how much work answering costs.
//!
//! * proptest: on random university instances, every workload query at
//!   every strategy level returns the same result multiset with and
//!   without a full complement of permanent indexes;
//! * regressions: insert-after-`create_index` visibility (incremental
//!   maintenance), lazy rebuild after a mutable relation access
//!   (stale-index path), `drop_index` re-planning exactly once, and the
//!   malformed-declaration rejections;
//! * acceptance: a repeated prepared query whose join term a permanent
//!   index covers records **zero** collection-phase index builds (vs ≥ 1
//!   per execution without the index), and `StrategyLevel::Auto` exploits
//!   the indexes on an indexed workload with `explain()` naming them.

use proptest::prelude::*;

use pascalr::{Database, StrategyLevel};
use pascalr_workload::{all_queries, figure1_sample_database, generate, UniversityConfig};

/// One single-component index per join/selection attribute of the
/// university schema.
const WORKLOAD_INDEXES: &[(&str, &str, &str)] = &[
    ("idx_e_enr", "employees", "enr"),
    ("idx_p_penr", "papers", "penr"),
    ("idx_p_pyear", "papers", "pyear"),
    ("idx_c_cnr", "courses", "cnr"),
    ("idx_t_tenr", "timetable", "tenr"),
    ("idx_t_tcnr", "timetable", "tcnr"),
];

fn sample_db() -> Database {
    Database::from_catalog(figure1_sample_database().unwrap())
}

fn create_workload_indexes(db: &Database) {
    for (name, relation, attr) in WORKLOAD_INDEXES {
        db.create_index(name, relation, &[attr]).unwrap();
    }
}

/// A join whose equality term a single-component index on `papers(penr)`
/// covers: the combination phase probes the permanent index instead of
/// building one per query.
const PUBLISHED_QUERY: &str = "published := [<e.ename> OF EACH e IN employees: \
                               SOME p IN papers (p.penr = e.enr)]";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Index-backed execution multiset-equals index-free execution for
    /// random (instance, query, level) combinations.  Both sides
    /// materialize duplicate-free relations, so set equality plus equal
    /// cardinality is multiset equality.
    #[test]
    fn indexed_execution_matches_index_free_execution(
        seed in 0u64..1024,
        query_idx in 0usize..16,
        level_idx in 0usize..5,
    ) {
        let config = UniversityConfig { seed, ..UniversityConfig::at_scale(1) };
        let plain = Database::from_catalog(generate(&config).unwrap());
        let indexed = plain.fork();
        create_workload_indexes(&indexed);

        let queries = all_queries();
        let query = &queries[query_idx % queries.len()];
        let level = StrategyLevel::ALL[level_idx];

        let bare = plain.query_with(query.text, level).unwrap();
        let backed = indexed.query_with(query.text, level).unwrap();
        prop_assert!(
            bare.result.set_eq(&backed.result),
            "query {} at {level} (seed {seed}): {} rows without indexes, {} with",
            query.id,
            bare.result.cardinality(),
            backed.result.cardinality()
        );
    }
}

#[test]
fn covered_prepared_query_records_zero_collection_index_builds() {
    let db = sample_db();
    let session = db.session().with_strategy(StrategyLevel::S2OneStep);
    let prepared = session.prepare(PUBLISHED_QUERY).unwrap();

    // Without a permanent index every execution hashes one side of the
    // equality join.
    let bare = prepared.execute().unwrap();
    assert!(
        bare.report.metrics.total().index_builds >= 1,
        "the rebuild path builds a per-query index: {:?}",
        bare.report.metrics.total()
    );

    // With the covering index: zero builds per execution, probes instead,
    // identical result; the plan names the index it relies on.
    db.create_index("penrindex", "papers", &["penr"]).unwrap();
    for round in 0..3 {
        let outcome = prepared.execute().unwrap();
        let total = outcome.report.metrics.total();
        assert_eq!(
            total.index_builds, 0,
            "round {round}: a covered term must not build an index: {total:?}"
        );
        assert!(total.index_probes > 0, "round {round}: {total:?}");
        assert!(bare.result.set_eq(&outcome.result), "round {round}");
        assert!(
            outcome.plan.used_indexes.contains(&"penrindex".to_string()),
            "{:?}",
            outcome.plan.used_indexes
        );
        assert!(outcome
            .plan
            .explain()
            .contains("permanent indexes: penrindex"));
    }
}

#[test]
fn inserts_after_create_index_are_visible_without_rebuilds() {
    let db = sample_db();
    db.create_index("penrindex", "papers", &["penr"]).unwrap();
    let session = db.session().with_strategy(StrategyLevel::S2OneStep);
    let prepared = session.prepare(PUBLISHED_QUERY).unwrap();
    let before = prepared.execute().unwrap();

    // An employee who published nothing yet (the query result is keyed by
    // ename; find an enr outside the current papers.penr set).
    let (new_penr, year_ty_ok) = {
        let catalog = db.snapshot();
        let published: std::collections::BTreeSet<i64> = catalog
            .relation("papers")
            .unwrap()
            .tuples()
            .map(|t| t.get(0).as_int().unwrap())
            .collect();
        let fresh = catalog
            .relation("employees")
            .unwrap()
            .tuples()
            .map(|t| t.get(0).as_int().unwrap())
            .find(|enr| !published.contains(enr))
            .expect("the sample database has unpublished employees");
        (fresh, true)
    };
    assert!(year_ty_ok);

    db.insert_values(
        "papers",
        vec![
            pascalr::Value::int(new_penr),
            pascalr::Value::int(1979),
            pascalr::Value::str("Fresh results"),
        ],
    )
    .unwrap();

    // The incrementally maintained index sees the new element: one more
    // qualifying employee, still zero index builds (no stale rebuild).
    let after = prepared.execute().unwrap();
    assert_eq!(
        after.result.cardinality(),
        before.result.cardinality() + 1,
        "the inserted paper must qualify its author"
    );
    assert_eq!(after.report.metrics.total().index_builds, 0);

    // A mutable relation access drops the index to stale; the next use
    // rebuilds it lazily — once, charged to that query — and stays
    // correct.
    db.mutate(|catalog| {
        let _ = catalog.relation_mut("papers").unwrap();
    });
    let stale = prepared.execute().unwrap();
    assert_eq!(stale.result.cardinality(), after.result.cardinality());
    assert_eq!(
        stale.report.metrics.total().index_builds,
        1,
        "the stale index rebuilds lazily on next use: {:?}",
        stale.report.metrics.total()
    );
    let again = prepared.execute().unwrap();
    assert_eq!(
        again.report.metrics.total().index_builds,
        0,
        "the lazy rebuild happens at most once, not per execution"
    );
    assert_eq!(again.result.cardinality(), after.result.cardinality());
}

#[test]
fn drop_index_replans_exactly_once_and_falls_back_to_rebuilds() {
    let db = sample_db();
    db.create_index("penrindex", "papers", &["penr"]).unwrap();
    let session = db.session().with_strategy(StrategyLevel::S2OneStep);
    let prepared = session.prepare(PUBLISHED_QUERY).unwrap();
    let covered = prepared.execute().unwrap();
    assert_eq!(covered.report.metrics.total().index_builds, 0);
    prepared.execute().unwrap();
    let before = db.plan_cache_stats();

    db.drop_index("penrindex").unwrap();
    let dropped = prepared.execute().unwrap();
    let after_drop = db.plan_cache_stats();
    assert_eq!(
        after_drop.misses,
        before.misses + 1,
        "dropping the index must re-plan the prepared query once"
    );
    assert!(
        dropped.report.metrics.total().index_builds >= 1,
        "without the index the per-query build is back: {:?}",
        dropped.report.metrics.total()
    );
    assert!(dropped.plan.used_indexes.is_empty());
    assert!(covered.result.set_eq(&dropped.result));

    prepared.execute().unwrap();
    assert_eq!(
        db.plan_cache_stats().misses,
        after_drop.misses,
        "exactly once: the re-planned query hits the cache again"
    );

    // Dropping twice is an error.
    assert!(db.drop_index("penrindex").is_err());
}

#[test]
fn malformed_index_declarations_are_rejected_with_details() {
    let db = sample_db();
    // Duplicate attribute names in one declaration.
    let err = db
        .create_index("twice", "courses", &["cnr", "cnr"])
        .unwrap_err();
    assert!(err.to_string().contains("more than once"), "{err}");
    // Two indexes over the identical (relation, attributes).
    db.create_index("cnrindex", "courses", &["cnr"]).unwrap();
    let err = db
        .create_index("cnrindex2", "courses", &["cnr"])
        .unwrap_err();
    assert!(err.to_string().contains("already covers"), "{err}");
    assert!(err.to_string().contains("cnrindex"), "{err}");
    // Same name twice.
    assert!(db.create_index("cnrindex", "timetable", &["tcnr"]).is_err());
    // Unknown relation / component.
    assert!(db.create_index("bad", "nosuch", &["cnr"]).is_err());
    assert!(db.create_index("bad", "courses", &["nosuch"]).is_err());

    // The dangling-declaration guard: redeclaring the indexed relation
    // with a schema lacking the component is rejected until the index is
    // dropped.
    let schema = pascalr::RelationSchema::all_key(
        "courses",
        vec![pascalr::relation::Attribute::new(
            "ctitle",
            pascalr::ValueType::string(40),
        )],
    );
    let err = db
        .mutate(|catalog| catalog.redeclare_relation(schema.clone()))
        .unwrap_err();
    assert!(err.to_string().contains("cnrindex"), "{err}");
    db.drop_index("cnrindex").unwrap();
    db.mutate(|catalog| catalog.redeclare_relation(schema))
        .unwrap();
}

#[test]
fn used_indexes_name_only_what_execution_actually_consults() {
    // (a) Range-serving indexes: the baseline never takes the index-backed
    // range path, so its plan must not claim the index; S3+ hoists the
    // equality into the range and probes it.
    let db = sample_db();
    db.create_index("pyearindex", "papers", &["pyear"]).unwrap();
    let text = "y77 := [<p.ptitle> OF EACH p IN papers: p.pyear = 1977]";
    let s0 = db.query_with(text, StrategyLevel::S0Baseline).unwrap();
    assert!(
        s0.plan.used_indexes.is_empty(),
        "{:?}",
        s0.plan.used_indexes
    );
    assert_eq!(s0.report.metrics.total().index_probes, 0);
    let s4 = db
        .query_with(text, StrategyLevel::S4CollectionQuantifiers)
        .unwrap();
    assert!(s4.plan.used_indexes.contains(&"pyearindex".to_string()));
    assert!(s4.report.metrics.total().index_probes > 0);
    assert!(s0.result.set_eq(&s4.result));

    // Two indexes covering the same restricted range: the executor probes
    // the first covering declaration, and the plan names exactly that one.
    db.create_index("pairindex", "papers", &["penr", "pyear"])
        .unwrap();
    let both = "one := [<p.ptitle> OF EACH p IN papers: \
                (p.pyear = 1977) AND (p.penr = 3)]";
    let outcome = db
        .query_with(both, StrategyLevel::S4CollectionQuantifiers)
        .unwrap();
    assert_eq!(
        outcome.plan.used_indexes,
        vec!["pyearindex".to_string()],
        "only the probed declaration is named"
    );

    // (b) Join indexes: only the *probed* side counts.  For
    // `p.penr = e.enr` the combination assembles e first and probes p, so
    // an index on employees(enr) is never consulted — the plan must not
    // name it, and the ephemeral build is still paid.
    let other = sample_db();
    other
        .create_index("enrindex", "employees", &["enr"])
        .unwrap();
    let session = other.session().with_strategy(StrategyLevel::S2OneStep);
    let outcome = session.prepare(PUBLISHED_QUERY).unwrap().execute().unwrap();
    assert!(
        outcome.plan.used_indexes.is_empty(),
        "an index on the build side is not used: {:?}",
        outcome.plan.used_indexes
    );
    assert!(outcome.report.metrics.total().index_builds >= 1);
}

#[test]
fn auto_exploits_permanent_indexes_and_explain_names_them() {
    let db = Database::from_catalog(generate(&UniversityConfig::at_scale(2)).unwrap());
    db.analyze().unwrap();
    db.create_index("penrindex", "papers", &["penr"]).unwrap();
    db.create_index("pyearindex", "papers", &["pyear"]).unwrap();
    db.analyze().unwrap();

    let text = "published77 := [<e.ename> OF EACH e IN employees: \
                SOME p IN papers ((p.penr = e.enr) AND (p.pyear = 1977))]";
    let outcome = db.query(text).unwrap(); // default strategy: Auto
    let est = outcome.plan.estimates.as_ref().unwrap();
    assert!(est.auto_selected);
    assert!(
        !outcome.plan.used_indexes.is_empty(),
        "Auto must pick an index-exploiting plan on the indexed workload: {}",
        outcome.plan.explain()
    );
    assert!(
        outcome.plan.explain().contains("permanent indexes: "),
        "{}",
        outcome.plan.explain()
    );
    let total = outcome.report.metrics.total();
    assert_eq!(total.index_builds, 0, "{total:?}");
    assert!(total.index_probes > 0, "{total:?}");

    // The result agrees with a fixed index-free level on a forked
    // database — and the cost model really shifted: without the indexes
    // the same query's Auto plan relies on none and predicts a strictly
    // higher cost for the chosen shape (the zeroed build/scan cost is
    // what steers Auto toward index-exploiting plans).
    let bare = db.fork();
    bare.drop_index("penrindex").unwrap();
    bare.drop_index("pyearindex").unwrap();
    let expected = bare.query_with(text, StrategyLevel::S2OneStep).unwrap();
    assert!(expected.result.set_eq(&outcome.result));

    let bare_auto = bare.query(text).unwrap();
    assert!(bare_auto.plan.used_indexes.is_empty());
    let bare_est = bare_auto.plan.estimates.as_ref().unwrap();
    assert!(
        est.total_cost < bare_est.total_cost,
        "indexes must lower the predicted cost of the winning plan: \
         {} (indexed) vs {} (bare)",
        est.total_cost,
        bare_est.total_cost
    );
}
