//! Smoke test: the `examples/quickstart.rs` flow, driven through the
//! `pascalr_repro` facade re-exports — declare the Figure 1 database, load
//! the department instance, then run the paper's Example 2.1 query at all
//! five strategy levels and check every level against the brute-force
//! oracle from `pascalr_workload`.

use pascalr_parser::paper::{EXAMPLE_2_1_QUERY, FIGURE_1_DECLARATIONS};
use pascalr_relation::Tuple;
use pascalr_repro::pascalr::{Database, StrategyLevel, Value};
use pascalr_repro::pascalr_workload::oracle_eval;

/// Builds the quickstart department: three professors and a technician,
/// their papers, two courses and a two-entry timetable.
fn quickstart_database() -> Database {
    let db = Database::from_declarations(FIGURE_1_DECLARATIONS).unwrap();

    let professor = db.enum_value("statustype", "professor").unwrap();
    let technician = db.enum_value("statustype", "technician").unwrap();
    for (enr, name, status) in [
        (10, "Abel", professor.clone()),
        (11, "Baker", professor.clone()),
        (12, "Cohen", professor.clone()),
        (20, "Highman", technician),
    ] {
        db.insert(
            "employees",
            Tuple::new(vec![Value::int(enr), Value::str(name), status]),
        )
        .unwrap();
    }
    for (penr, pyear, title) in [
        (10, 1977, "On Selection"),
        (11, 1976, "On Division"),
        (12, 1977, "On Joins"),
    ] {
        db.insert(
            "papers",
            Tuple::new(vec![Value::int(penr), Value::int(pyear), Value::str(title)]),
        )
        .unwrap();
    }
    let freshman = db.enum_value("leveltype", "freshman").unwrap();
    let senior = db.enum_value("leveltype", "senior").unwrap();
    for (cnr, level, title) in [
        (50, freshman, "Intro to Programming"),
        (53, senior, "Compilers"),
    ] {
        db.insert(
            "courses",
            Tuple::new(vec![Value::int(cnr), level, Value::str(title)]),
        )
        .unwrap();
    }
    let monday = db.enum_value("daytype", "monday").unwrap();
    let tuesday = db.enum_value("daytype", "tuesday").unwrap();
    for (tenr, tcnr, day) in [(10, 50, monday), (12, 53, tuesday)] {
        db.insert(
            "timetable",
            Tuple::new(vec![
                Value::int(tenr),
                Value::int(tcnr),
                day,
                Value::int(9_001_000),
                Value::str("R1"),
            ]),
        )
        .unwrap();
    }
    db
}

#[test]
fn quickstart_flow_agrees_with_the_oracle_at_every_strategy_level() {
    let db = quickstart_database();
    assert_eq!(
        db.snapshot().relation_names(),
        vec!["employees", "papers", "courses", "timetable"]
    );

    let selection = db.parse(EXAMPLE_2_1_QUERY).unwrap();
    let expected = oracle_eval(&selection, &db.snapshot()).unwrap();
    assert!(
        expected.cardinality() > 0,
        "Example 2.1 must select someone"
    );

    for level in StrategyLevel::ALL {
        let outcome = db.query_selection(&selection, level).unwrap();
        assert!(
            expected.set_eq(&outcome.result),
            "strategy {level} disagrees with the oracle:\nexpected {expected}\ngot {got}",
            got = outcome.result,
        );
        assert_eq!(outcome.report.strategy, level);
        assert!(outcome.report.metrics.total().relation_scans > 0);
    }
}

#[test]
fn analyze_plus_auto_picks_a_level_and_matches_the_oracle() {
    let db = quickstart_database();
    // ANALYZE computes and caches the statistics the cost-based optimizer
    // plans from; Auto (the default) then picks a concrete paper level.
    db.analyze().unwrap();
    assert_eq!(db.default_strategy(), StrategyLevel::Auto);

    let selection = db.parse(EXAMPLE_2_1_QUERY).unwrap();
    let expected = oracle_eval(&selection, &db.snapshot()).unwrap();
    let outcome = db.query(EXAMPLE_2_1_QUERY).unwrap();
    assert!(
        expected.set_eq(&outcome.result),
        "Auto disagrees with the oracle"
    );
    assert!(
        StrategyLevel::ALL.contains(&outcome.report.strategy),
        "Auto reports the chosen fixed level, got {}",
        outcome.report.strategy
    );
    // The explain surface carries the rationale and the estimated-vs-actual
    // cardinality feedback.
    assert!(outcome.plan.explain().contains("auto strategy selection"));
    let analyzed = outcome.explain_analyzed();
    assert!(analyzed.contains("estimated vs actual rows:"), "{analyzed}");

    // ANALYZE of one relation must not thrash cached plans of queries
    // over other relations.
    let session = db.session();
    let profs = session
        .prepare("profs := [<e.ename> OF EACH e IN employees: e.estatus = professor]")
        .unwrap();
    profs.execute().unwrap();
    let before = db.plan_cache_stats();
    db.analyze_relation("courses").unwrap();
    profs.execute().unwrap();
    assert_eq!(
        db.plan_cache_stats().misses,
        before.misses,
        "unrelated ANALYZE kept the cache hit"
    );
}

#[test]
fn baseline_scans_more_than_the_optimized_strategies() {
    let db = quickstart_database();
    let baseline = db
        .query_with(EXAMPLE_2_1_QUERY, StrategyLevel::S0Baseline)
        .unwrap();
    let optimized = db
        .query_with(EXAMPLE_2_1_QUERY, StrategyLevel::S4CollectionQuantifiers)
        .unwrap();
    assert!(baseline.result.set_eq(&optimized.result));
    assert!(
        baseline.report.metrics.total().relation_scans
            > optimized.report.metrics.total().relation_scans,
        "the paper's core claim: the baseline re-scans ranges the optimized strategies avoid"
    );
}
