//! Experiment E1/E4: the Figure 1 declaration parses into the exact schema
//! the paper shows, selected variables and references behave as in
//! Section 3.1, and the primary index of Example 3.1 can be built and
//! maintained.

use pascalr::{Database, Value};
use pascalr_parser::paper::FIGURE_1_DECLARATIONS;
use pascalr_relation::{HashIndex, Key, Tuple, ValueType};
use pascalr_workload::figure1_sample_database;

#[test]
fn figure1_schema_matches_the_paper() {
    let db = Database::from_declarations(FIGURE_1_DECLARATIONS).unwrap();
    let cat = db.snapshot();
    assert_eq!(
        cat.relation_names(),
        vec!["employees", "papers", "courses", "timetable"]
    );

    let employees = cat.relation("employees").unwrap();
    assert_eq!(employees.schema().key_names(), vec!["enr"]);
    assert_eq!(
        employees.schema().attribute(0).ty,
        ValueType::subrange(1, 99)
    );
    assert_eq!(employees.schema().attribute(1).ty, ValueType::string(10));

    let papers = cat.relation("papers").unwrap();
    assert_eq!(papers.schema().key_names(), vec!["ptitle", "penr"]);
    assert_eq!(
        papers.schema().attribute(1).ty,
        ValueType::subrange(1900, 1999)
    );

    let courses = cat.relation("courses").unwrap();
    assert_eq!(courses.schema().key_names(), vec!["cnr"]);

    let timetable = cat.relation("timetable").unwrap();
    assert_eq!(timetable.schema().key_names(), vec!["tenr", "tcnr", "tday"]);
    assert_eq!(timetable.schema().arity(), 5);

    // All ten named types of the TYPE section are registered.
    assert_eq!(cat.types().len(), 10);
    for ty in [
        "statustype",
        "nametype",
        "titletype",
        "roomtype",
        "yeartype",
        "timetype",
        "daytype",
        "leveltype",
        "enumbertype",
        "cnumbertype",
    ] {
        assert!(cat.types().resolve(ty).is_ok(), "type {ty} missing");
    }
}

#[test]
fn selected_variables_and_references_work_across_the_catalog() {
    // Section 3.1: rel[keyval] selects by key; @rel[keyval] is a storable
    // reference that can be dereferenced later.
    let cat = figure1_sample_database().unwrap();
    let employees = cat.relation("employees").unwrap();
    let key = Key::single(10i64);
    let abel = employees.select_by_key(&key).unwrap();
    assert_eq!(abel.get(1), &Value::str("Abel"));

    let abel_ref = employees.ref_by_key(&key).unwrap();
    assert_eq!(
        cat.deref_component(abel_ref, "ename").unwrap(),
        &Value::str("Abel")
    );
    // A reference into a different relation resolves against that relation.
    let courses = cat.relation("courses").unwrap();
    let c_ref = courses.ref_by_key(&Key::single(51i64)).unwrap();
    assert_eq!(
        cat.deref_component(c_ref, "clevel")
            .unwrap()
            .as_enum()
            .unwrap()
            .label(),
        "sophomore"
    );
}

#[test]
fn example_3_1_primary_index_is_built_and_maintained() {
    // enrindex := [<e.enr, @e> OF EACH e IN employees: true]
    let mut cat = figure1_sample_database().unwrap();
    cat.declare_index("enrindex", "employees", &["enr"])
        .unwrap();
    let index = cat.build_index("enrindex").unwrap();
    assert_eq!(index.entry_count(), 6);
    assert_eq!(index.distinct_values(), 6);
    let hits = index.probe_value(&Value::int(20));
    assert_eq!(hits.len(), 1);
    assert_eq!(
        cat.deref_component(hits[0], "ename").unwrap(),
        &Value::str("Highman")
    );

    // Maintenance: after `employees :+ [<20, technician, 'Highman'>]`-style
    // insertion of a new employee, rebuilding reflects the new element (the
    // paper maintains the index incrementally; the declaration-level
    // behaviour is the same).
    let status = cat.types().enum_type("statustype").unwrap().clone();
    cat.insert(
        "employees",
        Tuple::new(vec![
            Value::int(30),
            Value::str("Newman"),
            status.value("assistant").unwrap(),
        ]),
    )
    .unwrap();
    let index = cat.build_index("enrindex").unwrap();
    assert_eq!(index.entry_count(), 7);
    assert_eq!(index.probe_value(&Value::int(30)).len(), 1);

    // The index can also be viewed as a reference relation (Figure 2 style).
    let as_rel = index.as_reference_relation(&["enr"]);
    assert_eq!(as_rel.cardinality(), 7);
}

#[test]
fn figure2_auxiliary_structures_have_the_expected_contents() {
    // The partial index ind_t_cnr and the single list sl_csoph of Figure 2 /
    // Example 3.2, built by hand through the relation layer.
    let cat = figure1_sample_database().unwrap();
    let timetable = cat.relation("timetable").unwrap();
    let ind_t_cnr = HashIndex::build_full("ind_t_cnr", timetable, &["tcnr"]).unwrap();
    assert_eq!(ind_t_cnr.entry_count(), timetable.cardinality());

    let courses = cat.relation("courses").unwrap();
    let level_idx = courses.schema().attr_index("clevel").unwrap();
    let sl_csoph: Vec<_> = courses
        .iter()
        .filter(|(_, t)| t.get(level_idx).as_enum().unwrap().ordinal <= 1)
        .map(|(r, _)| r)
        .collect();
    assert_eq!(sl_csoph.len(), 2, "freshman + sophomore level courses");

    // ij_c_t: courses joined to timetable entries through the index.
    let cnr_idx = courses.schema().attr_index("cnr").unwrap();
    let mut ij_c_t = Vec::new();
    for (c_ref, c) in courses.iter() {
        for &t_ref in ind_t_cnr.probe_value(c.get(cnr_idx)) {
            ij_c_t.push((c_ref, t_ref));
        }
    }
    assert_eq!(ij_c_t.len(), 6, "every timetable entry joins its course");
}
