//! Exhaustive concurrency models of the catalog's MVCC architecture.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`, where the `pascalr-sync`
//! facade swaps every lock, atomic and thread in the workspace onto the
//! vendored loom model checker (see `vendor/loom`).  `loom::model` then
//! runs each test body under **every** distinct thread interleaving (with
//! bounded preemptions), so the invariants asserted here are *checked over
//! the whole schedule space*, not sampled by a stress loop:
//!
//! * a reader snapshot never observes a torn (half-published) mutation;
//! * pinning a snapshot completes even while a mutation is in flight —
//!   readers are never blocked by writers;
//! * a stale permanent index is rebuilt exactly once no matter how
//!   concurrent probes interleave.
//!
//! Each test additionally asserts that exploration **completed** (the whole
//! bounded schedule space was visited, not cut off by an iteration limit)
//! and that it covered a non-trivial number of interleavings, so an
//! accidental serialization of the model — e.g. a refactor that makes the
//! "concurrent" part run before the spawn — fails loudly.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test --test loom_models`

#![cfg(loom)]

use pascalr_catalog::{Catalog, VersionedCatalog};
use pascalr_relation::{Attribute, RelationSchema, Tuple, Value, ValueType};
use pascalr_sync::atomic::{AtomicBool, Ordering};
use pascalr_sync::{loom, thread, Arc};

fn numbers_catalog(values: &[i64]) -> Catalog {
    let mut cat = Catalog::new();
    let schema = RelationSchema::all_key("numbers", vec![Attribute::new("n", ValueType::int())]);
    cat.declare_relation(schema).expect("fresh catalog");
    for v in values {
        cat.insert("numbers", Tuple::new(vec![Value::int(*v)]))
            .expect("distinct values");
    }
    cat
}

/// Linearizability of `snapshot()` against `mutate()`: a mutation inserting
/// a two-element batch is observable either not at all or in full.  A torn
/// snapshot (cardinality 1) in **any** interleaving fails the model.
#[test]
fn a_snapshot_never_observes_a_torn_mutation() {
    let stats = loom::model(|| {
        let cell = Arc::new(VersionedCatalog::new(numbers_catalog(&[])));

        let writer = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                cell.mutate(|c| {
                    c.insert("numbers", Tuple::new(vec![Value::int(1)]))
                        .expect("insert 1");
                    c.insert("numbers", Tuple::new(vec![Value::int(2)]))
                        .expect("insert 2");
                });
            })
        };
        let reader = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                let snap = cell.snapshot();
                let n = snap.relation("numbers").expect("declared").cardinality();
                assert!(n == 0 || n == 2, "torn batch visible: cardinality {n}");
            })
        };
        writer.join().expect("writer");
        reader.join().expect("reader");

        // After both threads, the mutation is fully published.
        let n = cell
            .snapshot()
            .relation("numbers")
            .expect("declared")
            .cardinality();
        assert_eq!(n, 2);
    });
    assert!(stats.complete, "schedule space exhausted");
    assert!(
        stats.iterations > 100,
        "only {} interleavings",
        stats.iterations
    );
}

/// Reader non-blocking: `snapshot()` must complete even while a writer is
/// inside its mutation closure.  The writer flags the mutation window with
/// an atomic; the model requires that at least one explored interleaving
/// pins a complete snapshot strictly inside that window (and that the
/// snapshot then shows the pre-mutation version).
#[test]
fn pinning_a_snapshot_completes_inside_a_mutation_window() {
    // Accumulated *across* interleavings, hence a plain std atomic (the
    // loom atomics only exist inside a model's schedule).
    let overlapped = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let observed = std::sync::Arc::clone(&overlapped);

    let stats = loom::model(move || {
        let cell = Arc::new(VersionedCatalog::new(numbers_catalog(&[1])));
        let in_mutation = Arc::new(AtomicBool::new(false));

        let writer = {
            let cell = Arc::clone(&cell);
            let in_mutation = Arc::clone(&in_mutation);
            thread::spawn(move || {
                cell.mutate(|c| {
                    in_mutation.store(true, Ordering::SeqCst);
                    c.insert("numbers", Tuple::new(vec![Value::int(2)]))
                        .expect("insert");
                    in_mutation.store(false, Ordering::SeqCst);
                });
            })
        };
        let reader = {
            let cell = Arc::clone(&cell);
            let in_mutation = Arc::clone(&in_mutation);
            let observed = std::sync::Arc::clone(&observed);
            thread::spawn(move || {
                let before = in_mutation.load(Ordering::SeqCst);
                let snap = cell.snapshot();
                let after = in_mutation.load(Ordering::SeqCst);
                let n = snap.relation("numbers").expect("declared").cardinality();
                if before && after {
                    // The snapshot was pinned entirely inside the mutation
                    // closure: it completed without waiting for the writer
                    // and shows the still-published previous version.
                    assert_eq!(n, 1, "mid-mutation snapshot must pin the old version");
                    observed.store(true, std::sync::atomic::Ordering::Relaxed);
                } else {
                    assert!(n == 1 || n == 2);
                }
            })
        };
        writer.join().expect("writer");
        reader.join().expect("reader");
    });
    assert!(stats.complete, "schedule space exhausted");
    assert!(
        stats.iterations > 100,
        "only {} interleavings",
        stats.iterations
    );
    assert!(
        overlapped.load(std::sync::atomic::Ordering::Relaxed),
        "no interleaving pinned a snapshot inside the mutation window — \
         snapshot() appears to block on the writer"
    );
}

/// A permanent index invalidated to stale is rebuilt **exactly once** under
/// concurrent probes: whichever prober wins the cell lock rebuilds, the
/// other observes the already-live index, and both serve the same content.
#[test]
fn a_stale_permanent_index_rebuilds_exactly_once_under_concurrent_probes() {
    let stats = loom::model(|| {
        let mut cat = numbers_catalog(&[1, 2, 3]);
        cat.declare_index("numbers_n", "numbers", &["n"])
            .expect("index on declared relation");
        // Mutable access drops every index on the relation to stale.
        let _ = cat.relation_mut("numbers").expect("declared");
        let cat = Arc::new(cat);

        let probe = |cat: Arc<Catalog>| {
            thread::spawn(move || {
                let use_ = cat
                    .permanent_index("numbers", &["n"])
                    .expect("index is declared");
                (use_.rebuilt, use_.index.entry_count())
            })
        };
        let a = probe(Arc::clone(&cat));
        let b = probe(Arc::clone(&cat));
        let (rebuilt_a, len_a) = a.join().expect("prober a");
        let (rebuilt_b, len_b) = b.join().expect("prober b");

        assert_eq!(
            u32::from(rebuilt_a) + u32::from(rebuilt_b),
            1,
            "exactly one prober rebuilds a stale index (a: {rebuilt_a}, b: {rebuilt_b})"
        );
        assert_eq!(len_a, 3, "rebuilt index covers every live element");
        assert_eq!(len_a, len_b, "both probers serve the same index content");
    });
    assert!(stats.complete, "schedule space exhausted");
    assert!(
        stats.iterations > 100,
        "only {} interleavings",
        stats.iterations
    );
}
