//! End-to-end reproduction of the paper's worked examples (E3, E6–E8, E12)
//! through the public `Database` facade.

use pascalr::{Database, StrategyLevel};
use pascalr_calculus::{standardize, Quantifier};
use pascalr_parser::paper::{EXAMPLE_2_1_QUERY, EXAMPLE_4_5_QUERY, EXAMPLE_4_7_QUERY};
use pascalr_workload::{figure1_sample_database, generate, oracle_eval, UniversityConfig};

fn sample_db() -> Database {
    Database::from_catalog(figure1_sample_database().unwrap())
}

#[test]
fn example_2_2_standard_form_shape() {
    // Example 2.1 → Example 2.2: prefix ALL p SOME c SOME t, matrix of three
    // conjunctions each containing the professor test.
    let db = sample_db();
    let sel = db.parse(EXAMPLE_2_1_QUERY).unwrap();
    let std_sel = standardize(&sel);
    let prefix: Vec<(Quantifier, &str)> = std_sel
        .form
        .prefix
        .iter()
        .map(|p| (p.q, p.var.as_ref()))
        .collect();
    assert_eq!(
        prefix,
        vec![
            (Quantifier::All, "p"),
            (Quantifier::Some, "c"),
            (Quantifier::Some, "t")
        ]
    );
    assert_eq!(std_sel.form.conjunction_count(), 3);
}

#[test]
fn examples_2_1_4_5_and_4_7_return_the_same_result() {
    // The paper's transformed queries are equivalent to the original when
    // all range relations are non-empty; the library must agree, at every
    // strategy level, for all three formulations.
    let db = sample_db();
    let reference = db
        .query_with(EXAMPLE_2_1_QUERY, StrategyLevel::S0Baseline)
        .unwrap()
        .result;
    assert_eq!(reference.cardinality(), 3);
    for query in [EXAMPLE_2_1_QUERY, EXAMPLE_4_5_QUERY, EXAMPLE_4_7_QUERY] {
        for level in StrategyLevel::ALL {
            let outcome = db.query_with(query, level).unwrap();
            assert!(
                reference.set_eq(&outcome.result),
                "query formulation differs at {level}"
            );
        }
    }
}

#[test]
fn strategy_metrics_reproduce_the_papers_claims() {
    // E6: with Strategy 1 every relation is read no more than once.
    // E7: Strategy 3 removes a conjunction and shrinks candidate sets.
    // E8: Strategy 4 reduces combination-phase work further.
    // (Scale 1 keeps the baseline's deliberately combinatorial combination
    // phase fast enough for the test suite; the benches sweep larger scales.)
    let db = Database::from_catalog(generate(&UniversityConfig::at_scale(1)).unwrap());
    let outcomes = db.compare_strategies(EXAMPLE_2_1_QUERY).unwrap();
    let scans: Vec<u64> = outcomes
        .iter()
        .map(|o| o.report.metrics.total().relation_scans)
        .collect();
    let max_scans: Vec<u64> = outcomes
        .iter()
        .map(|o| o.report.metrics.max_scans_per_relation())
        .collect();
    let intermediates: Vec<u64> = outcomes
        .iter()
        .map(|o| o.report.metrics.total().intermediate_tuples)
        .collect();
    let conjunctions: Vec<usize> = outcomes
        .iter()
        .map(|o| o.plan.prepared.form.conjunction_count())
        .collect();

    // Baseline reads relations repeatedly; Strategy 1 reads each exactly once.
    assert!(scans[0] > scans[1], "scans: {scans:?}");
    assert_eq!(max_scans[1], 1, "max scans per relation at S1");
    assert_eq!(max_scans[4], 1, "max scans per relation at S4");
    // Strategy 3 removes one conjunction (3 → 2).
    assert_eq!(conjunctions[0], 3);
    assert_eq!(conjunctions[3], 2);
    // Intermediate structures shrink monotonically from S1 through S4.
    assert!(intermediates[2] <= intermediates[1]);
    assert!(
        intermediates[3] < intermediates[2],
        "intermediates: {intermediates:?}"
    );
    assert!(
        intermediates[4] < intermediates[0],
        "intermediates: {intermediates:?}"
    );
    // Results identical everywhere.
    for pair in outcomes.windows(2) {
        assert!(pair[0].result.set_eq(&pair[1].result));
    }
}

#[test]
fn example_4_7_plan_builds_cset_tset_pset() {
    let db = sample_db();
    let outcome = db
        .query_with(EXAMPLE_2_1_QUERY, StrategyLevel::S4CollectionQuantifiers)
        .unwrap();
    let steps = &outcome.plan.semijoin_steps;
    assert_eq!(steps.len(), 3);
    assert_eq!(steps[0].bound_var.as_ref(), "c"); // cset
    assert_eq!(steps[1].bound_var.as_ref(), "t"); // tset (built from cset)
    assert_eq!(steps[2].bound_var.as_ref(), "p"); // pset
    assert!(outcome.plan.prepared.form.prefix.is_empty());
    // The value lists were materialized and sized.
    for step in steps {
        assert!(
            outcome
                .report
                .metrics
                .structure_sizes
                .contains_key(&step.produces),
            "missing recorded size for {}",
            step.produces
        );
    }
}

#[test]
fn empty_relation_adaptation_of_example_2_2() {
    // E12: papers = [] — the answer must be exactly the professors, at every
    // strategy level, with the fallback reported.
    let db = sample_db();
    db.mutate(|c| c.relation_mut("papers").unwrap().clear());
    for level in StrategyLevel::ALL {
        let outcome = db.query_with(EXAMPLE_2_1_QUERY, level).unwrap();
        assert_eq!(outcome.result.cardinality(), 3, "{level}");
        assert!(outcome.report.fallback.is_some(), "{level}");
    }
}

#[test]
fn oracle_agreement_on_three_generated_databases() {
    for seed in [1u64, 7, 42] {
        let config = UniversityConfig {
            seed,
            ..UniversityConfig::at_scale(1)
        };
        let cat = generate(&config).unwrap();
        let db = Database::from_catalog(cat.clone());
        let sel = db.parse(EXAMPLE_2_1_QUERY).unwrap();
        let expected = oracle_eval(&sel, &cat).unwrap();
        // The baseline level is exercised for one seed (its deliberately
        // unoptimized combination phase dominates the test's runtime);
        // the optimized levels are checked for every seed.
        let levels: &[StrategyLevel] = if seed == 1 {
            &StrategyLevel::ALL
        } else {
            &[
                StrategyLevel::S2OneStep,
                StrategyLevel::S3ExtendedRanges,
                StrategyLevel::S4CollectionQuantifiers,
            ]
        };
        for &level in levels {
            let outcome = db.query_with(EXAMPLE_2_1_QUERY, level).unwrap();
            assert!(
                expected.set_eq(&outcome.result),
                "seed {seed} level {level}"
            );
        }
    }
}
