//! Top-level crate of the PASCAL/R query-processing reproduction.
//!
//! This crate only hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); the library itself lives in the
//! workspace crates and is re-exported here for convenience:
//!
//! * [`pascalr`] — the public facade (`Database`, `StrategyLevel`, reports);
//! * [`pascalr_workload`] — the Figure 1 university database generator and
//!   the paper's query suite.

#![forbid(unsafe_code)]

pub use pascalr;
pub use pascalr_workload;
