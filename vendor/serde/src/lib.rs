//! Offline stand-in for `serde`.
//!
//! Exposes the `Serialize` / `Deserialize` trait names and their derive
//! macros with the same import paths as the real crate, so the workspace
//! compiles without network access. The derives expand to nothing and the
//! traits carry no methods — no code in this workspace takes a
//! `T: Serialize` bound yet. Replace with the real `serde` (features =
//! ["derive"]) once a registry is reachable; call sites need no changes.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
