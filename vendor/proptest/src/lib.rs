//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest 1.x API that
//! `tests/strategy_properties.rs` uses: the `Strategy` trait with
//! `prop_map`, range / tuple / `Just` / `any::<bool>()` strategies,
//! `prop_oneof!`, `proptest::collection::vec`, `ProptestConfig::with_cases`,
//! and the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Inputs are drawn from a deterministic splitmix64 stream (fixed seed per
//! test function), so failures reproduce across runs; there is no shrinking
//! and no persisted failure file. Swap in the real crate (see
//! `vendor/README.md`) for coverage-guided generation and shrinking.

pub mod test_runner {
    //! Execution configuration and the deterministic random stream.

    /// Per-`proptest!`-block configuration (stand-in for
    /// `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many random cases each test function runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic splitmix64 stream feeding the strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed generator used by the `proptest!` macro; every run
        /// of a test function sees the same case sequence.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x5EED_CAFE_F00D_0001,
            }
        }

        /// Returns the next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values (stand-in for `proptest::strategy::Strategy`).
    ///
    /// The real trait produces value *trees* supporting shrinking; this
    /// stand-in generates plain values.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy producing a single cloned value (stand-in for `proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_strategy_for_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_strategy_for_tuple {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_strategy_for_tuple! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }

    /// A type-erased strategy: a boxed closure drawing one value.
    pub type BoxedGen<V> = Box<dyn Fn(&mut TestRng) -> V>;

    /// Uniform choice between boxed alternatives; built by [`prop_oneof!`].
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<V> {
        options: Vec<BoxedGen<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union of the given alternatives (at least one).
        pub fn new(options: Vec<BoxedGen<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }

        /// Erases a strategy into a generation closure.
        pub fn boxed<S: Strategy<Value = V> + 'static>(strategy: S) -> BoxedGen<V> {
            Box::new(move |rng| strategy.generate(rng))
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len() as u64) as usize;
            (self.options[idx])(rng)
        }
    }

    /// Strategy for any value of a type (stand-in for `proptest::arbitrary`).
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value of `Self`.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_for_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_for_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The strategy of all values of `T` (stand-in for `proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Admissible length range for [`vec`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                start: exact,
                end: exact + 1,
            }
        }
    }

    /// Strategy for `Vec`s with element strategy `S` and a length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length lies in `size` (stand-in for
    /// `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Union::boxed($strategy) ),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` test (panics, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` test (panics, no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` test (panics, no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for case in 0..config.cases {
                    let _ = case;
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut rng = TestRng::deterministic();
        let strat = (0i64..10, 0u64..5).prop_map(|(a, b)| a + b as i64);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((0..14).contains(&v));
        }
    }

    #[test]
    fn oneof_and_vec_generate_expected_shapes() {
        let mut rng = TestRng::deterministic();
        let strat = crate::collection::vec(prop_oneof![Just(1u8), Just(7u8)], 0..4);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v.len() < 4);
            assert!(v.iter().all(|&x| x == 1 || x == 7));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_and_binds_patterns((a, b) in (0i64..5, 0i64..5), flip in any::<bool>()) {
            prop_assert!(a < 5 && b < 5);
            let x = if flip { a } else { b };
            prop_assert_eq!(x, if flip { a } else { b });
            prop_assert_ne!(x, 99);
        }
    }
}
