//! Model-aware synchronization primitives: `Mutex`, `RwLock`, `Arc` and
//! atomics.
//!
//! Under a running [`model`](crate::model) every acquire, release and
//! atomic operation is a schedulable point; whether an acquire can proceed
//! is decided by a registry the scheduler controls, so lock contention and
//! blocking are fully explored.  Outside a model the primitives devolve to
//! their plain `std` counterparts.
//!
//! Data is always kept behind the corresponding `std` lock as well: once
//! the registry grants an acquire the inner lock is uncontended (only one
//! managed thread runs at a time), and outside a model the inner lock *is*
//! the synchronization, so the types stay `Send`/`Sync`-correct in both
//! modes.

use std::fmt;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::sync::{Mutex as StdMutex, PoisonError};

use crate::rt::{self, ResourceId, Status, Tid};

pub use std::sync::Arc;

/// Atomic types whose every operation is a schedulable point under a
/// model.
pub mod atomic {
    use crate::rt::{self, Status};

    pub use std::sync::atomic::Ordering;

    /// An atomic fence; a schedulable point under a model.
    pub fn fence(order: Ordering) {
        if let Some((sched, me)) = rt::current() {
            sched.switch(me, Status::Runnable);
        }
        std::sync::atomic::fence(order);
    }

    macro_rules! atomic_type {
        ($(#[$doc:meta])* $name:ident, $std:path, $prim:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Creates a new atomic holding `value`.
                pub const fn new(value: $prim) -> $name {
                    $name { inner: <$std>::new(value) }
                }

                fn point(&self) {
                    if let Some((sched, me)) = rt::current() {
                        sched.switch(me, Status::Runnable);
                    }
                }

                /// Loads the value.
                pub fn load(&self, order: Ordering) -> $prim {
                    self.point();
                    self.inner.load(order)
                }

                /// Stores `value`.
                pub fn store(&self, value: $prim, order: Ordering) {
                    self.point();
                    self.inner.store(value, order);
                }

                /// Swaps in `value`, returning the previous value.
                pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                    self.point();
                    self.inner.swap(value, order)
                }

                /// Stores `new` when the current value is `current`.
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    self.point();
                    self.inner.compare_exchange(current, new, success, failure)
                }

                /// Weak variant of [`Self::compare_exchange`] (never
                /// spuriously fails in this stand-in).
                pub fn compare_exchange_weak(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    self.compare_exchange(current, new, success, failure)
                }

                /// Consumes the atomic, returning the value.
                pub fn into_inner(self) -> $prim {
                    self.inner.into_inner()
                }
            }
        };
    }

    atomic_type!(
        /// Model-aware `AtomicBool`.
        AtomicBool,
        std::sync::atomic::AtomicBool,
        bool
    );
    atomic_type!(
        /// Model-aware `AtomicU64`.
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64
    );
    atomic_type!(
        /// Model-aware `AtomicUsize`.
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize
    );

    macro_rules! atomic_arith {
        ($name:ident, $prim:ty) => {
            impl $name {
                /// Adds to the value, returning the previous value.
                pub fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                    self.point();
                    self.inner.fetch_add(value, order)
                }

                /// Subtracts from the value, returning the previous value.
                pub fn fetch_sub(&self, value: $prim, order: Ordering) -> $prim {
                    self.point();
                    self.inner.fetch_sub(value, order)
                }

                /// Bitwise-ors into the value, returning the previous value.
                pub fn fetch_or(&self, value: $prim, order: Ordering) -> $prim {
                    self.point();
                    self.inner.fetch_or(value, order)
                }

                /// Maximum of the value and `value`, returning the previous
                /// value.
                pub fn fetch_max(&self, value: $prim, order: Ordering) -> $prim {
                    self.point();
                    self.inner.fetch_max(value, order)
                }
            }
        };
    }

    atomic_arith!(AtomicU64, u64);
    atomic_arith!(AtomicUsize, usize);

    impl AtomicBool {
        /// Bitwise-ors into the value, returning the previous value.
        pub fn fetch_or(&self, value: bool, order: Ordering) -> bool {
            self.point();
            self.inner.fetch_or(value, order)
        }
    }
}

fn recover<T>(result: Result<T, PoisonError<T>>) -> T {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// Mutual exclusion with model-explored contention.
pub struct Mutex<T: ?Sized> {
    rid: ResourceId,
    /// The managed owner under a model (`None` = free).  Outside a model
    /// the inner `std` lock is authoritative and this is ignored.
    owner: StdMutex<Option<Tid>>,
    data: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            rid: rt::alloc_resource_id(),
            owner: StdMutex::new(None),
            data: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        recover(self.data.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex (a schedulable point; blocking is explored).
    /// Never poisons, parking_lot style.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if let Some((sched, me)) = rt::current() {
            sched.switch(me, Status::Runnable);
            loop {
                {
                    let mut owner = recover(self.owner.lock());
                    if owner.is_none() {
                        *owner = Some(me);
                        break;
                    }
                }
                sched.switch(me, Status::Blocked(self.rid));
            }
        }
        MutexGuard {
            lock: self,
            inner: ManuallyDrop::new(recover(self.data.lock())),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.data.get_mut())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.data.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: ManuallyDrop<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the data lock *before* telling the scheduler: the release
        // schedulable point may run another thread, which must be able to
        // acquire immediately.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        if let Some((sched, me)) = rt::current() {
            *recover(self.lock.owner.lock()) = None;
            sched.unblock(self.lock.rid);
            sched.switch(me, Status::Runnable);
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// Managed reader/writer registry of a [`RwLock`].
#[derive(Default)]
struct RwState {
    writer: bool,
    readers: usize,
}

/// Reader-writer lock with model-explored contention.
pub struct RwLock<T: ?Sized> {
    rid: ResourceId,
    rw: StdMutex<RwState>,
    data: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            rid: rt::alloc_resource_id(),
            rw: StdMutex::new(RwState::default()),
            data: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        recover(self.data.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access (a schedulable point).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        if let Some((sched, me)) = rt::current() {
            sched.switch(me, Status::Runnable);
            loop {
                {
                    let mut rw = recover(self.rw.lock());
                    if !rw.writer {
                        rw.readers += 1;
                        break;
                    }
                }
                sched.switch(me, Status::Blocked(self.rid));
            }
        }
        RwLockReadGuard {
            lock: self,
            inner: ManuallyDrop::new(recover(self.data.read())),
        }
    }

    /// Acquires exclusive write access (a schedulable point).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        if let Some((sched, me)) = rt::current() {
            sched.switch(me, Status::Runnable);
            loop {
                {
                    let mut rw = recover(self.rw.lock());
                    if !rw.writer && rw.readers == 0 {
                        rw.writer = true;
                        break;
                    }
                }
                sched.switch(me, Status::Blocked(self.rid));
            }
        }
        RwLockWriteGuard {
            lock: self,
            inner: ManuallyDrop::new(recover(self.data.write())),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.data.get_mut())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.data.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// Shared read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: ManuallyDrop<std::sync::RwLockReadGuard<'a, T>>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        if let Some((sched, me)) = rt::current() {
            {
                let mut rw = recover(self.lock.rw.lock());
                rw.readers -= 1;
                if rw.readers > 0 {
                    return;
                }
            }
            sched.unblock(self.lock.rid);
            sched.switch(me, Status::Runnable);
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// Exclusive write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: ManuallyDrop<std::sync::RwLockWriteGuard<'a, T>>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        if let Some((sched, me)) = rt::current() {
            recover(self.lock.rw.lock()).writer = false;
            sched.unblock(self.lock.rid);
            sched.switch(me, Status::Runnable);
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}
