//! Model-aware thread spawn, join and yield.
//!
//! Under a running [`model`](crate::model) spawned closures become managed
//! threads of the current execution: spawn and join are schedulable
//! points, and `yield_now` deprioritizes the caller for one scheduling
//! decision (which is what lets bounded spin loops terminate during
//! exploration).  Outside a model everything devolves to `std::thread`.

use std::sync::{Arc, Mutex as StdMutex, PoisonError};

use crate::rt::{self, join_resource, Scheduler, Status, Tid};

/// Handle to a spawned thread; joining is a schedulable point under a
/// model.
pub struct JoinHandle<T>(Inner<T>);

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        tid: Tid,
        result: Arc<StdMutex<Option<T>>>,
        sched: Arc<Scheduler>,
    },
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.  Mirrors
    /// `std::thread::JoinHandle::join`; under a model a panicking thread
    /// fails the whole execution before any joiner observes an `Err`.
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Std(handle) => handle.join(),
            Inner::Model { tid, result, sched } => {
                let (current, me) =
                    rt::current().expect("a model thread can only be joined from inside the model");
                debug_assert!(Arc::ptr_eq(&current, &sched));
                current.switch(me, Status::Runnable);
                while !sched.is_finished(tid) {
                    current.switch(me, Status::Blocked(join_resource(tid)));
                }
                let value = result.lock().unwrap_or_else(PoisonError::into_inner).take();
                Ok(value.expect("a finished model thread always stores its result"))
            }
        }
    }
}

/// Spawns a thread.  Under a model the new thread joins the current
/// execution's schedule; the spawn itself is a schedulable point.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::current() {
        None => JoinHandle(Inner::Std(std::thread::spawn(f))),
        Some((sched, me)) => {
            let tid = sched.register_thread();
            let result = Arc::new(StdMutex::new(None));
            let handle = {
                let sched = Arc::clone(&sched);
                let result = Arc::clone(&result);
                std::thread::spawn(move || {
                    let out = Arc::clone(&result);
                    rt::run_managed(sched, tid, f, &out);
                })
            };
            sched.add_handle(handle);
            sched.switch(me, Status::Runnable);
            JoinHandle(Inner::Model { tid, result, sched })
        }
    }
}

/// Yields the current thread.  Under a model this is a schedulable point
/// that skips the caller for one decision; outside it is
/// `std::thread::yield_now`.
pub fn yield_now() {
    match rt::current() {
        None => std::thread::yield_now(),
        Some((sched, me)) => sched.switch(me, Status::Yielded),
    }
}
