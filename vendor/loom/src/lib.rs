//! Offline stand-in for [`loom`](https://docs.rs/loom): a deterministic
//! model checker for concurrent Rust.
//!
//! [`model`] runs a closure many times, exploring the distinct thread
//! interleavings of its lock, atomic and thread operations with a
//! depth-first search over *schedulable points*.  Every `Mutex`/`RwLock`
//! acquire and release, every atomic operation, and every spawn/join/yield
//! is a point where the scheduler may switch threads; the search enumerates
//! the scheduling decisions (with a bounded number of *preemptive* switches,
//! see [`Builder::preemption_bound`]) until the whole tree is exhausted.
//!
//! Differences from the real crate, in the spirit of `vendor/README.md`
//! (exactly the surface this workspace needs, nothing more):
//!
//! * Execution is *sequentially consistent*: the checker explores
//!   interleavings of whole operations but does not model the C11 weak
//!   memory orderings the real loom simulates.  `Ordering` arguments are
//!   accepted and forwarded to the underlying `std` atomics.
//! * `loom::sync::Arc` is plain `std::sync::Arc` (the real crate also
//!   tracks causality through `Arc` and checks for leaks).
//! * Threads are real OS threads serialized by a cooperative scheduler
//!   (the real crate uses generators), so models run everywhere stable
//!   Rust runs.
//! * [`model`] returns [`Stats`] describing the exploration (iteration
//!   count and completeness) instead of `()` so tests can assert the state
//!   space was actually covered.
//! * `Mutex::lock`/`RwLock::read`/`RwLock::write` return guards directly
//!   (parking_lot style, matching the `pascalr-sync` facade) rather than
//!   `LockResult`s.
//!
//! Outside of [`model`] every primitive falls back to its plain `std`
//! behaviour, so code built with `--cfg loom` still works when executed
//! without a model harness (e.g. ordinary unit tests in the same build).

mod rt;
pub mod sync;
pub mod thread;

use std::sync::Arc;
use std::sync::Mutex as StdMutex;

use rt::Scheduler;

/// Result of a [`model`] exploration.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Number of distinct interleavings (executions) explored.
    pub iterations: usize,
    /// `true` when the search exhausted the whole (preemption-bounded)
    /// scheduling tree; `false` when it stopped at
    /// [`Builder::max_iterations`].
    pub complete: bool,
}

/// Configuration for a model exploration.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Maximum number of *preemptive* context switches per execution — a
    /// switch away from a thread that could have kept running.  Voluntary
    /// switches (blocking on a lock, yielding, finishing) are always
    /// unlimited.  `None` removes the bound (full exhaustive search).
    ///
    /// The default of `2` is the classic context-bounding result: almost
    /// all real synchronization bugs manifest within two preemptions,
    /// while the state space stays small enough to enumerate.
    pub preemption_bound: Option<usize>,
    /// Upper bound on scheduling decisions recorded in one execution;
    /// exceeding it fails the model (it almost always means an unbounded
    /// spin loop in the model body).
    pub max_branches: usize,
    /// Upper bound on explored interleavings before giving up with
    /// `Stats::complete == false`.
    pub max_iterations: usize,
}

impl Default for Builder {
    fn default() -> Builder {
        Builder {
            preemption_bound: Some(2),
            max_branches: 20_000,
            max_iterations: 500_000,
        }
    }
}

impl Builder {
    /// A builder with the default bounds.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Explores `f` under every schedule the configuration allows.
    ///
    /// # Panics
    ///
    /// Panics when any interleaving panics (assertion failure in the model
    /// body, deadlock, or a run exceeding [`Builder::max_branches`]),
    /// reporting which interleaving failed.
    pub fn check<F>(&self, f: F) -> Stats
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let mut path = Vec::new();
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            let sched = Arc::new(Scheduler::new(
                path,
                self.preemption_bound,
                self.max_branches,
            ));
            let root_out = Arc::new(StdMutex::new(None));
            let root = {
                let sched = Arc::clone(&sched);
                let f = Arc::clone(&f);
                let out = Arc::clone(&root_out);
                std::thread::spawn(move || rt::run_managed(sched, 0, move || f(), &out))
            };
            sched.wait_execution_end();
            let _ = root.join();
            for handle in sched.take_handles() {
                let _ = handle.join();
            }
            if let Some(msg) = sched.failure() {
                panic!("loom model failed on interleaving {iterations}: {msg}");
            }
            path = sched.take_path();
            if !rt::backtrack(&mut path) {
                return Stats {
                    iterations,
                    complete: true,
                };
            }
            if iterations >= self.max_iterations {
                return Stats {
                    iterations,
                    complete: false,
                };
            }
        }
    }
}

/// Explores `f` under every schedule the default [`Builder`] allows.
///
/// See [`Builder::check`]; the real loom's `model` returns `()`, this
/// stand-in returns the exploration [`Stats`].
pub fn model<F>(f: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f)
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Mutex};
    use super::*;

    #[test]
    fn atomic_increments_commute() {
        let stats = model(|| {
            let counter = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&counter);
            let t = thread::spawn(move || {
                c2.fetch_add(1, Ordering::SeqCst);
            });
            counter.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(counter.load(Ordering::SeqCst), 2);
        });
        assert!(stats.complete);
        assert!(stats.iterations > 1, "at least two interleavings explored");
    }

    #[test]
    fn lost_update_is_found() {
        // A classic racy read-modify-write: the checker must find the
        // interleaving where both threads read 0 and the final value is 1.
        let failed = std::panic::catch_unwind(|| {
            model(|| {
                let cell = Arc::new(AtomicUsize::new(0));
                let c2 = Arc::clone(&cell);
                let t = thread::spawn(move || {
                    let v = c2.load(Ordering::SeqCst);
                    c2.store(v + 1, Ordering::SeqCst);
                });
                let v = cell.load(Ordering::SeqCst);
                cell.store(v + 1, Ordering::SeqCst);
                t.join().unwrap();
                assert_eq!(cell.load(Ordering::SeqCst), 2);
            });
        });
        assert!(failed.is_err(), "the lost update must be discovered");
    }

    #[test]
    fn mutex_protects_read_modify_write() {
        let stats = model(|| {
            let cell = Arc::new(Mutex::new(0usize));
            let c2 = Arc::clone(&cell);
            let t = thread::spawn(move || {
                let mut guard = c2.lock();
                *guard += 1;
            });
            {
                let mut guard = cell.lock();
                *guard += 1;
            }
            t.join().unwrap();
            assert_eq!(*cell.lock(), 2);
        });
        assert!(stats.complete);
        assert!(stats.iterations > 1);
    }

    #[test]
    fn lock_order_inversion_deadlocks() {
        let failed = std::panic::catch_unwind(|| {
            model(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t = thread::spawn(move || {
                    let _ga = a2.lock();
                    let _gb = b2.lock();
                });
                let _gb = b.lock();
                let _ga = a.lock();
                drop((_ga, _gb));
                t.join().unwrap();
            });
        });
        let msg = failed.expect_err("the AB/BA deadlock must be discovered");
        let text = msg.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            text.contains("deadlock"),
            "failure names the deadlock: {text}"
        );
    }

    #[test]
    fn yielding_spin_loop_terminates() {
        let stats = model(|| {
            let flag = Arc::new(AtomicUsize::new(0));
            let f2 = Arc::clone(&flag);
            let t = thread::spawn(move || {
                f2.store(1, Ordering::SeqCst);
            });
            while flag.load(Ordering::SeqCst) == 0 {
                thread::yield_now();
            }
            t.join().unwrap();
        });
        assert!(stats.complete, "a yielding wait loop must not diverge");
    }

    #[test]
    fn primitives_work_outside_a_model() {
        let m = Mutex::new(5usize);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        let a = AtomicUsize::new(1);
        assert_eq!(a.fetch_add(1, Ordering::SeqCst), 1);
        let t = thread::spawn(|| 7usize);
        assert_eq!(t.join().unwrap(), 7);
    }
}
