//! The model-checking runtime: a cooperative scheduler that serializes the
//! threads of one execution and drives a depth-first search over the
//! scheduling decisions taken at schedulable points.
//!
//! Exactly one managed thread runs at a time.  At every schedulable point
//! the running thread re-enters the scheduler, which consults the recorded
//! exploration path: the prefix already explored is replayed, the first
//! fresh decision records a new branch (all runnable threads, first choice
//! taken), and [`backtrack`] advances the last branch to its next untried
//! choice between executions.  Threads are real OS threads parked on a
//! condvar while not scheduled, so the model body runs ordinary Rust.

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Identifier of a managed thread within one execution (dense, 0 = root).
pub(crate) type Tid = usize;

/// Identifier of something a thread can block on: a lock, or a thread
/// being joined.
pub(crate) type ResourceId = u64;

/// Allocator for lock resource ids (process-global; ids only need to be
/// unique, not stable across executions).
static NEXT_RESOURCE: AtomicU64 = AtomicU64::new(1);

pub(crate) fn alloc_resource_id() -> ResourceId {
    NEXT_RESOURCE.fetch_add(1, Ordering::Relaxed)
}

/// The resource a joiner of thread `tid` blocks on.  Join resources live
/// in the top of the id space, disjoint from the counter-allocated locks.
pub(crate) fn join_resource(tid: Tid) -> ResourceId {
    u64::MAX - tid as u64
}

/// Run state of one managed thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    /// Schedulable.
    Runnable,
    /// Voluntarily yielded: schedulable, but skipped for one scheduling
    /// decision so a `yield_now` spin loop always lets its peers progress
    /// (this is what bounds such loops during exploration).
    Yielded,
    /// Waiting for a resource to be released.
    Blocked(ResourceId),
    /// Done; never scheduled again.
    Finished,
}

/// One recorded scheduling decision with more than one possible choice.
#[derive(Debug, Clone)]
pub(crate) struct Branch {
    /// The threads that were schedulable at this point, in decision order
    /// (the previously running thread first — continuing is explored before
    /// preempting).
    choices: Vec<Tid>,
    /// Index of the choice taken in the current execution.
    index: usize,
}

/// Advances `path` to the next unexplored interleaving; `false` when the
/// whole tree has been visited.
pub(crate) fn backtrack(path: &mut Vec<Branch>) -> bool {
    while let Some(last) = path.last_mut() {
        if last.index + 1 < last.choices.len() {
            last.index += 1;
            return true;
        }
        path.pop();
    }
    false
}

/// Panic payload used to unwind a managed thread once the execution has
/// already failed elsewhere (deadlock, or another thread's panic); the
/// thread wrapper swallows it rather than reporting a second failure.
struct FailurePropagation;

struct State {
    threads: Vec<Status>,
    /// The one thread allowed to run.
    active: Tid,
    /// Exploration path: replayed prefix + branches recorded this run.
    path: Vec<Branch>,
    /// Position of the next decision in `path`.
    pos: usize,
    /// Preemptive switches taken so far in this execution.
    preemptions: usize,
    preemption_bound: Option<usize>,
    max_branches: usize,
    /// First failure observed (assertion panic, deadlock, branch overflow).
    failure: Option<String>,
    /// OS handles of the helper threads spawned during this execution.
    handles: Vec<std::thread::JoinHandle<()>>,
}

enum Pick {
    Next(Tid),
    AllFinished,
    Failed,
}

/// The per-execution scheduler.
pub(crate) struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
}

impl Scheduler {
    pub(crate) fn new(
        path: Vec<Branch>,
        preemption_bound: Option<usize>,
        max_branches: usize,
    ) -> Scheduler {
        Scheduler {
            state: Mutex::new(State {
                threads: vec![Status::Runnable],
                active: 0,
                path,
                pos: 0,
                preemptions: 0,
                preemption_bound,
                max_branches,
                failure: None,
                handles: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a newly spawned managed thread, returning its tid.
    pub(crate) fn register_thread(&self) -> Tid {
        let mut s = self.lock();
        s.threads.push(Status::Runnable);
        s.threads.len() - 1
    }

    pub(crate) fn add_handle(&self, handle: std::thread::JoinHandle<()>) {
        self.lock().handles.push(handle);
    }

    pub(crate) fn take_handles(&self) -> Vec<std::thread::JoinHandle<()>> {
        std::mem::take(&mut self.lock().handles)
    }

    pub(crate) fn take_path(&self) -> Vec<Branch> {
        std::mem::take(&mut self.lock().path)
    }

    pub(crate) fn failure(&self) -> Option<String> {
        self.lock().failure.clone()
    }

    pub(crate) fn is_finished(&self, tid: Tid) -> bool {
        self.lock().threads[tid] == Status::Finished
    }

    /// Marks every thread blocked on `rid` runnable again (they re-contend
    /// for the resource when scheduled).
    pub(crate) fn unblock(&self, rid: ResourceId) {
        let mut s = self.lock();
        for status in &mut s.threads {
            if *status == Status::Blocked(rid) {
                *status = Status::Runnable;
            }
        }
    }

    /// Records an execution failure (first one wins) and wakes every
    /// parked thread so it can unwind.
    pub(crate) fn fail(&self, msg: String) {
        let mut s = self.lock();
        if s.failure.is_none() {
            s.failure = Some(msg);
        }
        self.cv.notify_all();
    }

    /// Blocks the calling (unmanaged, harness) thread until the execution
    /// completes or fails.
    pub(crate) fn wait_execution_end(&self) {
        let mut s = self.lock();
        loop {
            if s.failure.is_some() || s.threads.iter().all(|t| *t == Status::Finished) {
                return;
            }
            s = self.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Parks the calling managed thread until it is first scheduled.
    /// Returns `false` when the execution failed before that happened.
    fn wait_until_active(&self, tid: Tid) -> bool {
        let mut s = self.lock();
        loop {
            if s.failure.is_some() {
                return false;
            }
            if s.active == tid && s.threads[tid] == Status::Runnable {
                return true;
            }
            s = self.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// The schedulable point: the active thread `me` re-enters the
    /// scheduler with its new status, a successor is chosen (replaying or
    /// extending the exploration path), and the call returns once `me` is
    /// scheduled again.  With `Status::Finished` the call returns
    /// immediately after handing the baton on.
    pub(crate) fn switch(&self, me: Tid, status: Status) {
        let mut s = self.lock();
        if s.failure.is_some() {
            drop(s);
            propagate_failure();
            return;
        }
        debug_assert_eq!(s.active, me, "only the active thread may schedule");
        s.threads[me] = status;
        if status == Status::Finished {
            // Wake joiners of this thread.
            let rid = join_resource(me);
            for st in &mut s.threads {
                if *st == Status::Blocked(rid) {
                    *st = Status::Runnable;
                }
            }
        }
        match Self::pick(&mut s, me) {
            Pick::AllFinished => {
                self.cv.notify_all();
            }
            Pick::Failed => {
                self.cv.notify_all();
                drop(s);
                propagate_failure();
            }
            Pick::Next(next) => {
                s.active = next;
                self.cv.notify_all();
                if next == me || status == Status::Finished {
                    return;
                }
                loop {
                    s = self.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
                    if s.failure.is_some() {
                        drop(s);
                        propagate_failure();
                        return;
                    }
                    if s.active == me && s.threads[me] == Status::Runnable {
                        return;
                    }
                }
            }
        }
    }

    /// Chooses the next thread to run.  Decisions with a single possible
    /// choice are taken silently; genuine choices consume or extend the
    /// exploration path.
    fn pick(s: &mut State, me: Tid) -> Pick {
        let mut runnable: Vec<Tid> = s
            .threads
            .iter()
            .enumerate()
            .filter(|(_, st)| **st == Status::Runnable)
            .map(|(tid, _)| tid)
            .collect();
        if runnable.is_empty() {
            // Only yielded threads left (if any): give them their turn back.
            for (tid, st) in s.threads.iter_mut().enumerate() {
                if *st == Status::Yielded {
                    *st = Status::Runnable;
                    runnable.push(tid);
                }
            }
        }
        if runnable.is_empty() {
            if s.threads.iter().all(|t| *t == Status::Finished) {
                return Pick::AllFinished;
            }
            s.failure = Some(format!(
                "deadlock: every unfinished thread is blocked ({:?})",
                s.threads
            ));
            return Pick::Failed;
        }
        let me_runnable = runnable.contains(&me);
        let bound_hit = s
            .preemption_bound
            .is_some_and(|bound| s.preemptions >= bound);
        let choices: Vec<Tid> = if me_runnable && bound_hit {
            vec![me]
        } else if me_runnable {
            let mut c = vec![me];
            c.extend(runnable.iter().copied().filter(|&t| t != me));
            c
        } else {
            runnable
        };
        let chosen = if choices.len() == 1 {
            choices[0]
        } else if s.pos < s.path.len() {
            let branch = &s.path[s.pos];
            debug_assert_eq!(
                branch.choices, choices,
                "replay diverged: the model body must be deterministic"
            );
            let chosen = branch.choices[branch.index];
            s.pos += 1;
            chosen
        } else {
            if s.path.len() >= s.max_branches {
                s.failure = Some(format!(
                    "execution exceeded {} scheduling decisions — \
                     an unbounded loop in the model body?",
                    s.max_branches
                ));
                return Pick::Failed;
            }
            s.path.push(Branch {
                choices: choices.clone(),
                index: 0,
            });
            s.pos += 1;
            choices[0]
        };
        if me_runnable && chosen != me {
            s.preemptions += 1;
        }
        // A step is about to run: previously yielded threads become
        // ordinary candidates again at the next decision.
        for st in &mut s.threads {
            if *st == Status::Yielded {
                *st = Status::Runnable;
            }
        }
        Pick::Next(chosen)
    }
}

thread_local! {
    static CONTEXT: RefCell<Option<(Arc<Scheduler>, Tid)>> = const { RefCell::new(None) };
}

/// The calling thread's scheduler context, when it is a managed thread of
/// a running model.
pub(crate) fn current() -> Option<(Arc<Scheduler>, Tid)> {
    CONTEXT.with(|ctx| ctx.borrow().clone())
}

/// Body of every managed OS thread: installs the context, waits to be
/// scheduled, runs `f`, stores the result and hands the baton on.  A panic
/// in `f` fails the whole execution (unless it is the failure-propagation
/// unwind itself).
pub(crate) fn run_managed<T, F>(sched: Arc<Scheduler>, tid: Tid, f: F, out: &Mutex<Option<T>>)
where
    F: FnOnce() -> T,
{
    CONTEXT.with(|ctx| *ctx.borrow_mut() = Some((Arc::clone(&sched), tid)));
    if !sched.wait_until_active(tid) {
        return;
    }
    match panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(value) => {
            *out.lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
            sched.switch(tid, Status::Finished);
        }
        Err(payload) => {
            if !payload.is::<FailurePropagation>() {
                sched.fail(describe_panic(&payload));
            }
        }
    }
    CONTEXT.with(|ctx| *ctx.borrow_mut() = None);
}

/// Unwinds the calling managed thread after the execution failed.  During
/// an already-running unwind (guard drops) it returns instead, so release
/// paths never double-panic.
fn propagate_failure() {
    if std::thread::panicking() {
        return;
    }
    panic::panic_any(FailurePropagation);
}

fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(msg) = payload.downcast_ref::<&'static str>() {
        (*msg).to_string()
    } else if let Some(msg) = payload.downcast_ref::<String>() {
        msg.clone()
    } else {
        "model thread panicked".to_string()
    }
}
