//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion 0.5 API the `pascalr-bench`
//! harnesses use — `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros — as a small but *working*
//! harness: each benchmark is warmed up, run for the configured sample
//! count, and reported as a mean wall-clock time per iteration. There is no
//! statistical analysis, HTML report, or baseline comparison; swap in the
//! real crate (see `vendor/README.md`) for publication-grade numbers.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A two-part id: function name plus a parameter rendered with `Display`.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher<'a> {
    samples: u64,
    warm_up_time: Duration,
    recorded: &'a mut Option<Duration>,
}

impl Bencher<'_> {
    /// Runs `routine` repeatedly and records the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_up_until = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_until {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        *self.recorded = Some(start.elapsed() / self.samples.max(1) as u32);
    }
}

/// Top-level harness configuration (stand-in for `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    #[allow(dead_code)] // accepted for API compatibility; samples are count-bound
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(5),
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets how many measured iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration preceding measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Accepted for API compatibility; this stand-in is sample-count bound.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Applies command-line arguments. Only a positional name filter is
    /// honoured; criterion's flags (`--bench`, `--save-baseline`, ...) are
    /// accepted and ignored so `cargo bench` invocations keep working.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" | "--test" | "--exact" | "--nocapture" => {}
                // Flags taking a value.
                "--save-baseline" | "--baseline" | "--load-baseline" | "--sample-size"
                | "--warm-up-time" | "--measurement-time" | "--profile-time" => {
                    let _ = args.next();
                }
                other if other.starts_with("--") => {}
                filter => self.filter = Some(filter.to_string()),
            }
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
        }
    }

    /// Registers an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let group_name = id.name.clone();
        self.benchmark_group(group_name).run(id, f);
        self
    }

    /// Prints the criterion-style closing line.
    pub fn final_summary(&self) {}

    fn matches(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }
}

/// A named group of benchmarks (stand-in for `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.run(id.into(), f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.run(id.into(), |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher<'_>)>(&mut self, id: BenchmarkId, mut f: F) {
        let full_name = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full_name) {
            return;
        }
        let mut recorded = None;
        let mut bencher = Bencher {
            samples: self.criterion.sample_size.max(1) as u64,
            warm_up_time: self.criterion.warm_up_time,
            recorded: &mut recorded,
        };
        f(&mut bencher);
        match recorded {
            Some(mean) => println!("{full_name:<60} time: [{mean:?} (mean)]"),
            None => println!("{full_name:<60} (no measurement recorded)"),
        }
    }
}

/// Declares a group of benchmark functions; supports both the plain and the
/// `name = ...; config = ...; targets = ...` forms of the real macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        /// Runs every benchmark target of this group.
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Generates the `main` function running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1));
        let mut hits = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group.bench_function("inc", |b| b.iter(|| hits = black_box(hits + 1)));
            group.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &n| {
                b.iter(|| black_box(n * 2))
            });
            group.finish();
        }
        assert!(hits >= 5);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = Criterion::default()
            .sample_size(1)
            .warm_up_time(Duration::ZERO);
        c.filter = Some("nomatch".to_string());
        let mut ran = false;
        let mut group = c.benchmark_group("g");
        group.bench_function("skipped", |b| b.iter(|| ran = true));
        group.finish();
        assert!(!ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
        assert_eq!(BenchmarkId::from("s").to_string(), "s");
    }
}
