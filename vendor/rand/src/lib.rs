//! Offline stand-in for `rand` 0.8.
//!
//! Provides the exact surface the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_bool, gen_range}` — on top of a
//! splitmix64 generator. Deterministic for a given seed, which is all the
//! workload generator relies on; not cryptographically secure, and the
//! streams differ from real `StdRng` (any golden data must be regenerated if
//! the real crate is swapped back in).

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (stand-in for `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random value methods (stand-in for `rand::Rng`).
pub trait Rng: RngCore {
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        // 53 uniformly distributed mantissa bits, as real rand does.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Samples uniformly from `range`; panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seeding constructors (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators (stand-in for `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea & Flood): passes BigCrush on its own
            // and is plenty for workload generation.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&hits), "suspicious bias: {hits}/2000");
    }
}
