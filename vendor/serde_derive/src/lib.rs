//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, and nothing in this
//! workspace serializes values yet — the derives exist so that type
//! definitions can already carry `#[derive(Serialize, Deserialize)]`.
//! Both derives therefore expand to nothing; swap in the real crate (see
//! `vendor/README.md`) before relying on serialization.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
