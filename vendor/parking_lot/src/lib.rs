//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the surface the workspace uses is provided: `Mutex` with a
//! non-poisoning `lock()`. Behaviour matches parking_lot's contract closely
//! enough for our metrics use (short critical sections, no recursion): a
//! poisoned std mutex is recovered rather than propagated, mirroring
//! parking_lot's lack of poisoning.

use std::fmt;
use std::sync::MutexGuard;

/// Mutual exclusion primitive mirroring `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex::lock` this never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}
