//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the surface the workspace uses is provided: `Mutex` with a
//! non-poisoning `lock()` and `RwLock` with non-poisoning `read()`/`write()`.
//! Behaviour matches parking_lot's contract closely enough for our uses
//! (short critical sections, no recursion): a poisoned std lock is recovered
//! rather than propagated, mirroring parking_lot's lack of poisoning.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::MutexGuard;

/// Mutual exclusion primitive mirroring `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex::lock` this never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Reader-writer lock mirroring `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until it is available. Unlike
    /// `std::sync::RwLock::read` this never returns a poison error.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires exclusive write access, blocking until it is available.
    /// Never returns a poison error.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// Shared read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// Exclusive write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write_roundtrip() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 41;
        assert_eq!(*lock.read(), 42);
        assert_eq!(lock.into_inner(), 42);
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let lock = RwLock::new(7u32);
        let a = lock.read();
        let b = lock.read();
        assert_eq!(*a + *b, 14);
        assert!(lock.try_write().is_none());
        drop((a, b));
        assert!(lock.try_write().is_some());
    }

    #[test]
    fn rwlock_debug_formats() {
        let lock = RwLock::new(3u32);
        assert!(format!("{lock:?}").contains('3'));
        let guard = lock.write();
        assert!(format!("{lock:?}").contains("locked"));
        assert!(format!("{guard:?}").contains('3'));
    }
}
