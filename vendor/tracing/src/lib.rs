//! Offline stand-in for the `tracing` crate family.
//!
//! The real `tracing` + `tracing-core` pair is unreachable (no network
//! route to crates.io), so this stub provides the minimal structured-
//! tracing core the workspace needs: span open/close [`SpanEvent`]s with
//! typed [`FieldValue`]s, a process-global [`Subscriber`] registry, a
//! monotone span-id allocator, and a relaxed consumer count that lets
//! instrumentation sites decide "is anyone listening?" with a single
//! atomic load.
//!
//! The ergonomic layer — the `span!` macro, thread-local span stacks,
//! per-query collectors, span trees — lives in `crates/obs`
//! (`pascalr-obs`), which is the only crate that depends on this stub.
//! Like the other `vendor/` stand-ins this crate is exempt from the
//! workspace lint gates and deliberately uses `std::sync` directly: its
//! statics must be const-constructible, which the loom primitives behind
//! the `pascalr-sync` facade are not. Nothing in here is ever used as a
//! synchronization protocol by the engine — the dispatcher state is
//! internal plumbing, and the engine only observes it through the
//! `pascalr-obs` API (which is inert under `--cfg loom`).
//!
//! Swapping in the real crates later: `pascalr_obs::span!` maps onto
//! `tracing::info_span!`, [`Subscriber`] onto `tracing::Subscriber`, and
//! this file disappears.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Duration;

/// A typed value attached to a span field.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer field.
    U64(u64),
    /// Signed integer field.
    I64(i64),
    /// Floating-point field.
    F64(f64),
    /// Boolean field.
    Bool(bool),
    /// Owned string field.
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One structured tracing event: a span opening (with its parent link and
/// fields) or a span closing (with its measured wall-clock duration).
#[derive(Clone, Debug)]
pub enum SpanEvent {
    /// A span was entered.
    Open {
        /// Process-unique span id (from [`next_span_id`]).
        id: u64,
        /// Enclosing span on the same logical execution, if any.
        parent: Option<u64>,
        /// Static span name (the taxonomy key, e.g. `"plan"`).
        name: &'static str,
        /// Structured fields recorded at open time.
        fields: Vec<(&'static str, FieldValue)>,
    },
    /// A span was closed.
    Close {
        /// Id of the span that closed.
        id: u64,
        /// Wall-clock time the span was open.
        duration: Duration,
    },
}

impl SpanEvent {
    /// The span id this event refers to.
    #[must_use]
    pub fn id(&self) -> u64 {
        match self {
            SpanEvent::Open { id, .. } | SpanEvent::Close { id, .. } => *id,
        }
    }
}

/// A consumer of span events registered with [`register`].
///
/// Implementations must be cheap and non-blocking: `event` runs inline at
/// every instrumentation site while at least one consumer is active.
pub trait Subscriber: Send + Sync {
    /// Receive one span event.
    fn event(&self, event: &SpanEvent);
}

/// Opaque handle identifying a registered subscriber.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubscriberId(u64);

/// How many consumers (global subscribers + externally counted
/// thread-local collectors) are currently listening. Instrumentation
/// fast-paths gate on `consumer_count() > 0` — one relaxed load.
static CONSUMERS: AtomicUsize = AtomicUsize::new(0);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_SUBSCRIBER_ID: AtomicU64 = AtomicU64::new(1);
#[allow(clippy::type_complexity)]
static SUBSCRIBERS: RwLock<Vec<(SubscriberId, Arc<dyn Subscriber>)>> = RwLock::new(Vec::new());

/// Number of active consumers. A single `Relaxed` load.
#[must_use]
pub fn consumer_count() -> usize {
    CONSUMERS.load(Ordering::Relaxed)
}

/// Declare an external consumer (e.g. a thread-local collector) active.
pub fn add_consumer() {
    CONSUMERS.fetch_add(1, Ordering::Relaxed);
}

/// Declare an external consumer gone.
pub fn remove_consumer() {
    CONSUMERS.fetch_sub(1, Ordering::Relaxed);
}

/// Allocate a process-unique span id.
#[must_use]
pub fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// Register a global subscriber; it receives every event from every
/// thread until [`unregister`]ed.
pub fn register(subscriber: Arc<dyn Subscriber>) -> SubscriberId {
    let id = SubscriberId(NEXT_SUBSCRIBER_ID.fetch_add(1, Ordering::Relaxed));
    SUBSCRIBERS
        .write()
        .unwrap_or_else(PoisonError::into_inner)
        .push((id, subscriber));
    add_consumer();
    id
}

/// Remove a previously registered subscriber. Unknown ids are ignored
/// (double-unregister is harmless).
pub fn unregister(id: SubscriberId) {
    let mut subs = SUBSCRIBERS.write().unwrap_or_else(PoisonError::into_inner);
    let before = subs.len();
    subs.retain(|(sid, _)| *sid != id);
    if subs.len() < before {
        remove_consumer();
    }
}

/// Fan one event out to every registered subscriber.
///
/// Callers should gate on [`consumer_count`] first; with no subscribers
/// this still takes the read lock, which the `pascalr-obs` fast path
/// never reaches.
pub fn dispatch(event: &SpanEvent) {
    let subs = SUBSCRIBERS.read().unwrap_or_else(PoisonError::into_inner);
    for (_, sub) in subs.iter() {
        sub.event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    struct Sink(Mutex<Vec<u64>>);
    impl Subscriber for Sink {
        fn event(&self, event: &SpanEvent) {
            self.0.lock().unwrap().push(event.id());
        }
    }

    #[test]
    fn register_dispatch_unregister_roundtrip() {
        let sink = Arc::new(Sink(Mutex::new(Vec::new())));
        let before = consumer_count();
        let id = register(sink.clone());
        assert_eq!(consumer_count(), before + 1);
        dispatch(&SpanEvent::Close {
            id: 7,
            duration: Duration::from_nanos(1),
        });
        unregister(id);
        unregister(id); // double unregister must not underflow
        assert_eq!(consumer_count(), before);
        assert_eq!(*sink.0.lock().unwrap(), vec![7]);
    }

    #[test]
    fn span_ids_are_unique_and_monotone() {
        let a = next_span_id();
        let b = next_span_id();
        assert!(b > a);
    }
}
